(** In-place BLAS-1/2 primitives over swappable flat storage.

    This is the substrate the whole numeric stack sits on: {!Vec} is
    a contiguous view, {!Mat} is a single row-major storage block
    with a row stride, and the factorizations ({!Householder}, {!Qr},
    {!Qrcp}, the specialized pivoting in [Core.Special_qrcp]) drive
    their hot loops through the panel primitives below instead of
    copying columns in and out.

    Raw storage is a {!Backend.buf} — the tagged union of the shipped
    backends ([floatarray] and C-layout [Bigarray]).  Entry points
    dispatch on the tag once and run a monomorphic loop; the
    arithmetic for every backend comes from one shared body (see
    {!Make} and backend.mli), so the same input bits produce the same
    output bits on every backend.

    {2 Views and the aliasing contract}

    A view designates the elements [data.(off + i*inc)] for
    [0 <= i < len].  Views {e alias} their backing storage: they are
    handles, not copies, and writing through a view writes the
    underlying vector or matrix.  The rules:

    - a view is only valid while its backing storage is; views are
      meant to be consumed immediately, not stored;
    - binary operations ({!dot}, {!axpy}, {!copy}, {!swap}) require
      the two views not to overlap unless they are the {e same}
      elements in the same order (in-place [x := x] patterns);
      overlapping but shifted views are undefined behaviour;
    - in-place mutation through a view is permitted exactly where an
      operation's documentation says so ([axpy]'s [y], [scal],
      [fill], [copy]'s [dst], [swap], {!reflect_panel}'s [data]);
      every other argument is read-only.

    {2 The no-copy contract}

    Reading or updating {e through a view costs zero copies}: every
    operation in this module walks the backing storage in place, on
    any backend.  Pipeline code must therefore reach numeric data via
    views ({!Vec.view}, {!Mat.col_view}/{!Mat.row_view}, {!sub}) or
    the iteration combinators ({!iteri}, {!fold_left}) — never by
    round-tripping through [Vec.to_array]/[Vec.of_array], which
    materializes a boxed copy on the host and, with a GC-opaque
    backend such as Bigarray, forces a full element-by-element
    conversion each way.  [of_array]/[to_array] are interchange
    boundaries (JSON, reports, tests), not access paths.

    All view accessors are bounds-checked at construction
    ({!view} validates the full extent), so the per-element [unsafe_]
    operations inside the kernels skip redundant checks. *)

type view
(** An aliasing window ([data], [off], [inc], [len]) over a
    {!Backend.buf}; construct with {!view}, {!full} or {!sub}. *)

val view : Backend.buf -> off:int -> inc:int -> len:int -> view
(** Validates that every designated element lies inside [data];
    raises [Invalid_argument] otherwise. *)

val full : Backend.buf -> view
(** The whole storage as a unit-stride view. *)

val sub : view -> pos:int -> len:int -> view
(** [sub v ~pos ~len] is the aliasing sub-window of elements
    [pos .. pos+len-1] of [v] — index arithmetic only, no copy.
    Raises [Invalid_argument] if the range exceeds [v]. *)

val len : view -> int

val backend : view -> Backend.id
(** The backend of the backing storage (derived allocations — e.g. a
    Householder reflector for a column view — are made in this
    backend so factorizations stay backend-homogeneous). *)

val storage : view -> Backend.buf
(** The backing storage itself (aliasing). *)

val get : view -> int -> float
val set : view -> int -> float -> unit

val unsafe_get : view -> int -> float
(** No bounds check; the view's constructor already proved the range
    valid, so [0 <= i < len] is the caller's only obligation. *)

val unsafe_set : view -> int -> float -> unit

val fill : view -> float -> unit
val copy : src:view -> dst:view -> unit
val swap : view -> view -> unit

val scal : float -> view -> unit
(** [scal alpha x] is [x <- alpha * x], in place. *)

val dot : view -> view -> float
val axpy : alpha:float -> x:view -> y:view -> unit
(** [axpy ~alpha ~x ~y] updates [y <- alpha * x + y] in place. *)

val amax : view -> float
(** Maximum absolute value; [0.] for an empty view. *)

val asum : view -> float

val sqnorm : view -> float
(** Unscaled sum of squares (the trailing-norm accumulation used by
    the pivoted factorizations). *)

val nrm2 : view -> float
(** Euclidean norm with infinity-norm scaling against overflow —
    the same two-pass algorithm at every layer, so norms computed on
    views agree bit-for-bit with {!Vec.norm2} on copies. *)

val iteri : (int -> float -> unit) -> view -> unit
val fold_left : ('a -> float -> 'a) -> 'a -> view -> 'a

val to_floatarray : view -> floatarray
(** Contiguous fresh host copy (interchange boundary). *)

(** {2 Row-major panel primitives}

    These operate directly on a matrix's flat storage ([data] with
    row stride [rs], so element (i,j) lives at [i*rs + j]) and
    traverse it row-major — one streaming pass instead of [width]
    strided column walks. *)

val col_sqnorms :
  data:Backend.buf -> rs:int -> row0:int -> row1:int -> col0:int -> col1:int ->
  float array
(** [col_sqnorms ~data ~rs ~row0 ~row1 ~col0 ~col1] returns the array
    of per-column sums of squares over rows [row0..row1-1] for
    columns [col0..col1-1].  Each column's sum accumulates in
    ascending row order, so results are bit-identical to a per-column
    loop — on every backend. *)

val reflect_panel :
  tau:float -> v:Backend.buf -> data:Backend.buf -> rs:int ->
  row0:int -> col0:int -> col1:int -> unit
(** Applies the Householder reflector [I - tau v v^T] to the panel of
    rows [row0 .. row0 + length v - 1], columns [col0..col1-1], in
    place: two row-major passes (accumulate [w = tau V^T A], then
    rank-one update [A <- A - v w^T]).  Columns with an exactly-zero
    coefficient are skipped, matching the column-at-a-time reference
    bit-for-bit.  [tau = 0.] is the identity and returns immediately.
    [v] and [data] may live in different backends (slow generic
    path, same FP order). *)

(** {2 The backend functor}

    [Make] instantiates the complete kernel set for any storage
    honoring {!Backend.S} — the reference path for bringing up a
    third backend (external BLAS staging buffers, mmap-backed
    storage...).  It is the {e same source text} as the shipped
    monomorphic kernels, so its FP behaviour is theirs by
    construction; what it lacks is their speed (on a non-flambda
    compiler, element access through the functor parameter is a
    closure call).  The dual-backend oracle tests run the pipeline
    through the dispatching API above; [Make] is additionally pinned
    bitwise against it. *)
module Make (B : Backend.S) : sig
  type storage = B.t
  type view = { data : storage; off : int; inc : int; len : int }

  val view : storage -> off:int -> inc:int -> len:int -> view
  val full : storage -> view
  val len : view -> int
  val sub : view -> pos:int -> len:int -> view
  val get : view -> int -> float
  val set : view -> int -> float -> unit
  val unsafe_get : view -> int -> float
  val unsafe_set : view -> int -> float -> unit
  val fill : view -> float -> unit
  val copy : src:view -> dst:view -> unit
  val swap : view -> view -> unit
  val scal : float -> view -> unit
  val dot : view -> view -> float
  val axpy : alpha:float -> x:view -> y:view -> unit
  val amax : view -> float
  val asum : view -> float
  val sqnorm : view -> float
  val nrm2 : view -> float
  val iteri : (int -> float -> unit) -> view -> unit
  val fold_left : ('a -> float -> 'a) -> 'a -> view -> 'a
  val to_floatarray : view -> floatarray

  val col_sqnorms :
    data:storage -> rs:int -> row0:int -> row1:int -> col0:int -> col1:int ->
    float array

  val reflect_panel :
    tau:float -> v:storage -> data:storage -> rs:int ->
    row0:int -> col0:int -> col1:int -> unit
end
