(** In-place BLAS-1/2 primitives over flat [floatarray] storage.

    This is the substrate the whole numeric stack sits on: {!Vec} is
    a contiguous view, {!Mat} is a single row-major [floatarray] with
    a row stride, and the factorizations ({!Householder}, {!Qr},
    {!Qrcp}, the specialized pivoting in [Core.Special_qrcp]) drive
    their hot loops through the panel primitives below instead of
    copying columns in and out.

    {2 Views and the aliasing contract}

    A {!view} ({i data}, {i off}, {i inc}, {i len}) designates the
    elements [data.(off + i*inc)] for [0 <= i < len].  Views {e
    alias} their backing storage: they are handles, not copies, and
    writing through a view writes the underlying vector or matrix.
    The rules:

    - a view is only valid while its backing storage is; views are
      meant to be consumed immediately, not stored;
    - binary operations ({!dot}, {!axpy}, {!copy}, {!swap}) require
      the two views not to overlap unless they are the {e same}
      elements in the same order (in-place [x := x] patterns);
      overlapping but shifted views are undefined behaviour;
    - in-place mutation through a view is permitted exactly where an
      operation's documentation says so ([axpy]'s [y], [scal],
      [fill], [copy]'s [dst], [swap], {!reflect_panel}'s [data]);
      every other argument is read-only.

    All view accessors are bounds-checked at construction
    ({!view} validates the full extent), so the per-element [unsafe_]
    operations inside the kernels skip redundant checks. *)

type view = private { data : floatarray; off : int; inc : int; len : int }
(** The type is exposed [private] so factorization kernels can read
    the fields without re-validating; construct only with {!view} or
    {!full}. *)

val view : floatarray -> off:int -> inc:int -> len:int -> view
(** Validates that every designated element lies inside [data];
    raises [Invalid_argument] otherwise. *)

val full : floatarray -> view
(** The whole array as a unit-stride view. *)

val len : view -> int

val get : view -> int -> float
val set : view -> int -> float -> unit

val unsafe_get : view -> int -> float
(** No bounds check; the view's constructor already proved the range
    valid, so [0 <= i < len] is the caller's only obligation. *)

val unsafe_set : view -> int -> float -> unit

val fill : view -> float -> unit
val copy : src:view -> dst:view -> unit
val swap : view -> view -> unit

val scal : float -> view -> unit
(** [scal alpha x] is [x <- alpha * x], in place. *)

val dot : view -> view -> float
val axpy : alpha:float -> x:view -> y:view -> unit
(** [axpy ~alpha ~x ~y] updates [y <- alpha * x + y] in place. *)

val amax : view -> float
(** Maximum absolute value; [0.] for an empty view. *)

val asum : view -> float

val sqnorm : view -> float
(** Unscaled sum of squares (the trailing-norm accumulation used by
    the pivoted factorizations). *)

val nrm2 : view -> float
(** Euclidean norm with infinity-norm scaling against overflow —
    the same two-pass algorithm at every layer, so norms computed on
    views agree bit-for-bit with {!Vec.norm2} on copies. *)

val iteri : (int -> float -> unit) -> view -> unit
val fold_left : ('a -> float -> 'a) -> 'a -> view -> 'a

val to_floatarray : view -> floatarray
(** Contiguous fresh copy. *)

(** {2 Row-major panel primitives}

    These operate directly on a matrix's flat storage ([data] with
    row stride [rs], so element (i,j) lives at [i*rs + j]) and
    traverse it row-major — one streaming pass instead of [width]
    strided column walks. *)

val col_sqnorms :
  data:floatarray -> rs:int -> row0:int -> row1:int -> col0:int -> col1:int ->
  floatarray
(** [col_sqnorms ~data ~rs ~row0 ~row1 ~col0 ~col1] returns the array
    of per-column sums of squares over rows [row0..row1-1] for
    columns [col0..col1-1].  Each column's sum accumulates in
    ascending row order, so results are bit-identical to a per-column
    loop. *)

val reflect_panel :
  tau:float -> v:floatarray -> data:floatarray -> rs:int ->
  row0:int -> col0:int -> col1:int -> unit
(** Applies the Householder reflector [I - tau v v^T] to the panel of
    rows [row0 .. row0 + length v - 1], columns [col0..col1-1], in
    place: two row-major passes (accumulate [w = tau V^T A], then
    rank-one update [A <- A - v w^T]).  Columns with an exactly-zero
    coefficient are skipped, matching the column-at-a-time reference
    bit-for-bit.  [tau = 0.] is the identity and returns
    immediately. *)
