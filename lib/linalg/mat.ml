type t = { m : int; n : int; rs : int; data : Backend.buf }
(* Row-major: element (i, j) lives at [i * rs + j].  Every
   constructor below builds a dense matrix with [rs = n]; the stride
   is carried separately so future submatrix views can share
   storage.  [data] is dynamic storage (see {!Backend}): hot kernels
   dispatch on its tag once per call, the per-element accessors here
   are the generic path for construction and small matrices. *)

let rows t = t.m
let cols t = t.n
let row_stride t = t.rs
let storage t = t.data
let backend t = Backend.id_of t.data

let unsafe_get t i j = Backend.unsafe_get t.data ((i * t.rs) + j)
let unsafe_set t i j x = Backend.unsafe_set t.data ((i * t.rs) + j) x

let get t i j =
  if i < 0 || i >= t.m || j < 0 || j >= t.n then
    invalid_arg "Mat.get: index out of bounds";
  unsafe_get t i j

let set t i j x =
  if i < 0 || i >= t.m || j < 0 || j >= t.n then
    invalid_arg "Mat.set: index out of bounds";
  unsafe_set t i j x

let alloc_in backend mn =
  match backend with
  | None -> Backend.create mn
  | Some b -> Backend.create_in b mn

let create ?backend m n = { m; n; rs = n; data = alloc_in backend (m * n) }

let init ?backend m n f =
  let data = alloc_in backend (m * n) in
  for i = 0 to m - 1 do
    let base = i * n in
    for j = 0 to n - 1 do
      Backend.unsafe_set data (base + j) (f i j)
    done
  done;
  { m; n; rs = n; data }

let of_rows ?backend rows =
  let m = Array.length rows in
  if m = 0 then create ?backend 0 0
  else begin
    let n = Array.length rows.(0) in
    Array.iter
      (fun r -> if Array.length r <> n then invalid_arg "Mat.of_rows: ragged rows")
      rows;
    let data = alloc_in backend (m * n) in
    for i = 0 to m - 1 do
      let r = Array.unsafe_get rows i in
      let base = i * n in
      for j = 0 to n - 1 do
        Backend.unsafe_set data (base + j) (Array.unsafe_get r j)
      done
    done;
    { m; n; rs = n; data }
  end

let of_cols ?backend cols =
  let n = Array.length cols in
  if n = 0 then create ?backend 0 0
  else begin
    let m = Array.length cols.(0) in
    Array.iter
      (fun c -> if Array.length c <> m then invalid_arg "Mat.of_cols: ragged columns")
      cols;
    (* Direct transposing copy: column j is contiguous on input, so
       stream each one down its strided destination. *)
    let data = alloc_in backend (m * n) in
    for j = 0 to n - 1 do
      let c = Array.unsafe_get cols j in
      for i = 0 to m - 1 do
        Backend.unsafe_set data ((i * n) + j) (Array.unsafe_get c i)
      done
    done;
    { m; n; rs = n; data }
  end

let of_col_vecs ?backend cols =
  let n = Array.length cols in
  if n = 0 then create ?backend 0 0
  else begin
    let m = Vec.dim cols.(0) in
    Array.iter
      (fun c -> if Vec.dim c <> m then invalid_arg "Mat.of_col_vecs: ragged columns")
      cols;
    let data = alloc_in backend (m * n) in
    for j = 0 to n - 1 do
      let c = Array.unsafe_get cols j in
      for i = 0 to m - 1 do
        Backend.unsafe_set data ((i * n) + j) (Vec.unsafe_get c i)
      done
    done;
    { m; n; rs = n; data }
  end

let identity ?backend n = init ?backend n n (fun i j -> if i = j then 1.0 else 0.0)

let copy t =
  let b = Backend.id_of t.data in
  if t.rs = t.n then begin
    let data = Backend.create_in b (t.m * t.n) in
    Backend.blit ~src:t.data ~src_pos:0 ~dst:data ~dst_pos:0 ~len:(t.m * t.n);
    { t with data }
  end
  else begin
    let data = Backend.create_in b (t.m * t.n) in
    for i = 0 to t.m - 1 do
      for j = 0 to t.n - 1 do
        Backend.unsafe_set data ((i * t.n) + j) (unsafe_get t i j)
      done
    done;
    { m = t.m; n = t.n; rs = t.n; data }
  end

let col_view ?(row0 = 0) t j =
  if j < 0 || j >= t.n then invalid_arg "Mat.col_view: column out of bounds";
  if row0 < 0 || row0 > t.m then invalid_arg "Mat.col_view: row out of bounds";
  Kernel.view t.data ~off:((row0 * t.rs) + j) ~inc:t.rs ~len:(t.m - row0)

let row_view ?(col0 = 0) t i =
  if i < 0 || i >= t.m then invalid_arg "Mat.row_view: row out of bounds";
  if col0 < 0 || col0 > t.n then invalid_arg "Mat.row_view: column out of bounds";
  Kernel.view t.data ~off:((i * t.rs) + col0) ~inc:1 ~len:(t.n - col0)

let col t j =
  if j < 0 || j >= t.n then invalid_arg "Mat.col: column out of bounds";
  Vec.init ~backend:(backend t) t.m (fun i -> unsafe_get t i j)

let row t i =
  if i < 0 || i >= t.m then invalid_arg "Mat.row: row out of bounds";
  Vec.init ~backend:(backend t) t.n (fun j -> unsafe_get t i j)

let set_col t j v =
  if Vec.dim v <> t.m then invalid_arg "Mat.set_col: dimension mismatch";
  if j < 0 || j >= t.n then invalid_arg "Mat.set_col: column out of bounds";
  for i = 0 to t.m - 1 do
    unsafe_set t i j (Vec.unsafe_get v i)
  done

let swap_cols t j1 j2 =
  if j1 < 0 || j1 >= t.n || j2 < 0 || j2 >= t.n then
    invalid_arg "Mat.swap_cols: column out of bounds";
  if j1 <> j2 then Kernel.swap (col_view t j1) (col_view t j2)

let transpose t = init ~backend:(backend t) t.n t.m (fun i j -> unsafe_get t j i)

let mul x y =
  if x.n <> y.m then invalid_arg "Mat.mul: dimension mismatch";
  let r = create ~backend:(backend x) x.m y.n in
  for i = 0 to x.m - 1 do
    for k = 0 to x.n - 1 do
      let xik = unsafe_get x i k in
      if xik <> 0.0 then
        for j = 0 to y.n - 1 do
          unsafe_set r i j (unsafe_get r i j +. (xik *. unsafe_get y k j))
        done
    done
  done;
  r

let mul_vec t x =
  if Vec.dim x <> t.n then invalid_arg "Mat.mul_vec: dimension mismatch";
  let xv = Vec.view x in
  Vec.init ~backend:(backend t) t.m (fun i -> Kernel.dot (row_view t i) xv)

let tmul_vec t x =
  if Vec.dim x <> t.m then invalid_arg "Mat.tmul_vec: dimension mismatch";
  let r = Vec.create ~backend:(backend t) t.n in
  for i = 0 to t.m - 1 do
    let xi = Vec.unsafe_get x i in
    if xi <> 0.0 then
      for j = 0 to t.n - 1 do
        Vec.unsafe_set r j (Vec.unsafe_get r j +. (xi *. unsafe_get t i j))
      done
  done;
  r

let sub x y =
  if x.m <> y.m || x.n <> y.n then invalid_arg "Mat.sub: dimension mismatch";
  init ~backend:(backend x) x.m x.n (fun i j -> unsafe_get x i j -. unsafe_get y i j)

let frobenius t =
  let s = ref 0.0 in
  for i = 0 to t.m - 1 do
    for j = 0 to t.n - 1 do
      let x = unsafe_get t i j in
      s := !s +. (x *. x)
    done
  done;
  sqrt !s

let col_norm t j =
  if j < 0 || j >= t.n then invalid_arg "Mat.col_norm: column out of bounds";
  sqrt (Kernel.sqnorm (col_view t j))

let trailing_col_norms t ~row0 ~col0 =
  if row0 < 0 || row0 > t.m || col0 < 0 || col0 > t.n then
    invalid_arg "Mat.trailing_col_norms: out of bounds";
  let sq =
    Kernel.col_sqnorms ~data:t.data ~rs:t.rs ~row0 ~row1:t.m ~col0 ~col1:t.n
  in
  Array.init (t.n - col0) (fun k -> sqrt (Array.unsafe_get sq k))

let norm2 ?(iters = 200) t =
  if t.m = 0 || t.n = 0 then 0.0
  else begin
    (* Power iteration on A^T A.  Seeded with the all-ones direction
       plus a deterministic perturbation so it cannot start orthogonal
       to the dominant singular vector for the structured 0/1 matrices
       used in the pipeline. *)
    let v =
      Vec.init ~backend:(backend t) t.n (fun j ->
          1.0 +. (float_of_int (j mod 7) /. 17.0))
    in
    let normalize x =
      let n = Vec.norm2 x in
      if n > 0.0 then Vec.scale_inplace (1.0 /. n) x;
      n
    in
    ignore (normalize v);
    let sigma = ref 0.0 in
    (try
       for _ = 1 to iters do
         let w = tmul_vec t (mul_vec t v) in
         let n = normalize w in
         Vec.blit w v;
         let s = sqrt n in
         if Float.abs (s -. !sigma) <= 1e-14 *. Float.max 1.0 s then begin
           sigma := s;
           raise Exit
         end;
         sigma := s
       done
     with Exit -> ());
    !sigma
  end

let select_cols t idx =
  Array.iter
    (fun j -> if j < 0 || j >= t.n then invalid_arg "Mat.select_cols: column out of bounds")
    idx;
  init ~backend:(backend t) t.m (Array.length idx) (fun i k -> unsafe_get t i idx.(k))

let equal ?(eps = 0.0) x y =
  x.m = y.m && x.n = y.n
  && begin
       let ok = ref true in
       for i = 0 to x.m - 1 do
         for j = 0 to x.n - 1 do
           if Float.abs (unsafe_get x i j -. unsafe_get y i j) > eps then ok := false
         done
       done;
       !ok
     end

let to_rows t =
  Array.init t.m (fun i -> Array.init t.n (fun j -> unsafe_get t i j))

let pp ppf t =
  for i = 0 to t.m - 1 do
    Format.fprintf ppf "[";
    for j = 0 to t.n - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (unsafe_get t i j)
    done;
    Format.fprintf ppf "]@."
  done
