type t = floatarray

let create n = Float.Array.make n 0.0
let init = Float.Array.init
let copy = Float.Array.copy
let of_list = Float.Array.of_list
let dim = Float.Array.length
let fill v x = Float.Array.fill v 0 (Float.Array.length v) x

let of_array a = Float.Array.init (Array.length a) (Array.unsafe_get a)
let to_array v = Array.init (Float.Array.length v) (Float.Array.unsafe_get v)

let get = Float.Array.get
let set = Float.Array.set
let unsafe_get = Float.Array.unsafe_get
let unsafe_set = Float.Array.unsafe_set

let raw v = v
let of_raw v = v
let view v = Kernel.full v
let slice = Float.Array.sub

let check_same_dim name x y =
  if Float.Array.length x <> Float.Array.length y then
    invalid_arg (name ^ ": dimension mismatch")

let dot x y =
  check_same_dim "Vec.dot" x y;
  Kernel.dot (Kernel.full x) (Kernel.full y)

let norm_inf x = Kernel.amax (Kernel.full x)
let norm1 x = Kernel.asum (Kernel.full x)
let norm2 x = Kernel.nrm2 (Kernel.full x)

let scale alpha x = Float.Array.map (fun v -> alpha *. v) x
let scale_inplace alpha x = Kernel.scal alpha (Kernel.full x)

let map2 f x y =
  check_same_dim "Vec.map2" x y;
  Float.Array.init (Float.Array.length x) (fun i ->
      f (Float.Array.unsafe_get x i) (Float.Array.unsafe_get y i))

let add x y = map2 ( +. ) x y
let sub x y = map2 ( -. ) x y

let axpy ~alpha ~x ~y =
  check_same_dim "Vec.axpy" x y;
  Kernel.axpy ~alpha ~x:(Kernel.full x) ~y:(Kernel.full y)

let equal ?(eps = 0.0) x y =
  Float.Array.length x = Float.Array.length y
  && begin
       let ok = ref true in
       for i = 0 to Float.Array.length x - 1 do
         if
           Float.abs (Float.Array.unsafe_get x i -. Float.Array.unsafe_get y i)
           > eps
         then ok := false
       done;
       !ok
     end

let concat = Float.Array.concat

let iteri = Float.Array.iteri
let fold_left = Float.Array.fold_left
let map = Float.Array.map

let pp ppf v =
  Format.fprintf ppf "(";
  Float.Array.iteri
    (fun i x -> if i = 0 then Format.fprintf ppf "%g" x else Format.fprintf ppf ", %g" x)
    v;
  Format.fprintf ppf ")"
