type t = Backend.buf

let create ?backend n =
  match backend with
  | None -> Backend.create n
  | Some b -> Backend.create_in b n

let init ?backend n f =
  match backend with
  | None -> Backend.init n f
  | Some b -> Backend.init_in b n f

let backend = Backend.id_of
let copy v = Backend.copy v
let dim = Backend.length
let fill v x = Backend.fill v ~pos:0 ~len:(Backend.length v) x

let of_list ?backend l =
  let a = Array.of_list l in
  init ?backend (Array.length a) (Array.unsafe_get a)

let of_array ?backend a = init ?backend (Array.length a) (Array.unsafe_get a)

let to_array v =
  let n = Backend.length v in
  let a = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set a i (Backend.unsafe_get v i)
  done;
  a

let get = Backend.get
let set = Backend.set
let unsafe_get = Backend.unsafe_get
let unsafe_set = Backend.unsafe_set

let storage v = v
let of_storage v = v
let view v = Kernel.full v
let slice v pos len = Backend.sub v ~pos ~len

let blit src dst =
  let n = Backend.length src in
  if Backend.length dst <> n then invalid_arg "Vec.blit: dimension mismatch";
  Backend.blit ~src ~src_pos:0 ~dst ~dst_pos:0 ~len:n

let check_same_dim name x y =
  if Backend.length x <> Backend.length y then
    invalid_arg (name ^ ": dimension mismatch")

let dot x y =
  check_same_dim "Vec.dot" x y;
  Kernel.dot (Kernel.full x) (Kernel.full y)

let norm_inf x = Kernel.amax (Kernel.full x)
let norm1 x = Kernel.asum (Kernel.full x)
let norm2 x = Kernel.nrm2 (Kernel.full x)

(* Derived vectors are allocated in the backend of their (first)
   input, so a backend-homogeneous computation stays homogeneous
   whatever the ambient default is. *)
let scale alpha x =
  Backend.init_in (Backend.id_of x) (Backend.length x) (fun i ->
      alpha *. Backend.unsafe_get x i)

let scale_inplace alpha x = Kernel.scal alpha (Kernel.full x)

let map2 f x y =
  check_same_dim "Vec.map2" x y;
  Backend.init_in (Backend.id_of x) (Backend.length x) (fun i ->
      f (Backend.unsafe_get x i) (Backend.unsafe_get y i))

let add x y = map2 ( +. ) x y
let sub x y = map2 ( -. ) x y

let axpy ~alpha ~x ~y =
  check_same_dim "Vec.axpy" x y;
  Kernel.axpy ~alpha ~x:(Kernel.full x) ~y:(Kernel.full y)

let equal ?(eps = 0.0) x y =
  Backend.length x = Backend.length y
  && begin
       let ok = ref true in
       for i = 0 to Backend.length x - 1 do
         if Float.abs (Backend.unsafe_get x i -. Backend.unsafe_get y i) > eps
         then ok := false
       done;
       !ok
     end

let concat vs =
  let total = List.fold_left (fun acc v -> acc + Backend.length v) 0 vs in
  let b =
    match vs with [] -> Backend.default () | v :: _ -> Backend.id_of v
  in
  let r = Backend.create_in b total in
  let pos = ref 0 in
  List.iter
    (fun v ->
      let n = Backend.length v in
      Backend.blit ~src:v ~src_pos:0 ~dst:r ~dst_pos:!pos ~len:n;
      pos := !pos + n)
    vs;
  r

let iteri f v =
  for i = 0 to Backend.length v - 1 do
    f i (Backend.unsafe_get v i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to Backend.length v - 1 do
    acc := f !acc (Backend.unsafe_get v i)
  done;
  !acc

let map f x =
  Backend.init_in (Backend.id_of x) (Backend.length x) (fun i ->
      f (Backend.unsafe_get x i))

let pp ppf v =
  Format.fprintf ppf "(";
  iteri
    (fun i x -> if i = 0 then Format.fprintf ppf "%g" x else Format.fprintf ppf ", %g" x)
    v;
  Format.fprintf ppf ")"
