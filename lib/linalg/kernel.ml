type view = { data : floatarray; off : int; inc : int; len : int }

let view data ~off ~inc ~len =
  if len < 0 then invalid_arg "Kernel.view: negative length";
  if len > 0 then begin
    let last = off + ((len - 1) * inc) in
    let bound = Float.Array.length data in
    if off < 0 || off >= bound || last < 0 || last >= bound then
      invalid_arg "Kernel.view: view exceeds storage"
  end;
  { data; off; inc; len }

let full data = { data; off = 0; inc = 1; len = Float.Array.length data }
let len v = v.len

let unsafe_get v i = Float.Array.unsafe_get v.data (v.off + (i * v.inc))
let unsafe_set v i x = Float.Array.unsafe_set v.data (v.off + (i * v.inc)) x

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Kernel.get: index out of bounds";
  unsafe_get v i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Kernel.set: index out of bounds";
  unsafe_set v i x

let check_same_len name x y =
  if x.len <> y.len then invalid_arg (name ^ ": length mismatch")

let fill v x =
  for i = 0 to v.len - 1 do
    unsafe_set v i x
  done

let copy ~src ~dst =
  check_same_len "Kernel.copy" src dst;
  for i = 0 to src.len - 1 do
    unsafe_set dst i (unsafe_get src i)
  done

let swap x y =
  check_same_len "Kernel.swap" x y;
  for i = 0 to x.len - 1 do
    let t = unsafe_get x i in
    unsafe_set x i (unsafe_get y i);
    unsafe_set y i t
  done

let scal alpha v =
  for i = 0 to v.len - 1 do
    unsafe_set v i (alpha *. unsafe_get v i)
  done

let dot x y =
  check_same_len "Kernel.dot" x y;
  let s = ref 0.0 in
  for i = 0 to x.len - 1 do
    s := !s +. (unsafe_get x i *. unsafe_get y i)
  done;
  !s

let axpy ~alpha ~x ~y =
  check_same_len "Kernel.axpy" x y;
  for i = 0 to x.len - 1 do
    unsafe_set y i (unsafe_get y i +. (alpha *. unsafe_get x i))
  done

let amax v =
  let s = ref 0.0 in
  for i = 0 to v.len - 1 do
    s := Float.max !s (Float.abs (unsafe_get v i))
  done;
  !s

let asum v =
  let s = ref 0.0 in
  for i = 0 to v.len - 1 do
    s := !s +. Float.abs (unsafe_get v i)
  done;
  !s

let sqnorm v =
  let s = ref 0.0 in
  for i = 0 to v.len - 1 do
    let x = unsafe_get v i in
    s := !s +. (x *. x)
  done;
  !s

let nrm2 v =
  (* Scaled two-pass norm: avoids overflow for large counts such as
     cycle measurements in the raw matrices. *)
  let scale = amax v in
  if scale = 0.0 then 0.0
  else begin
    let s = ref 0.0 in
    for i = 0 to v.len - 1 do
      let r = unsafe_get v i /. scale in
      s := !s +. (r *. r)
    done;
    scale *. sqrt !s
  end

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (unsafe_get v i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc (unsafe_get v i)
  done;
  !acc

let to_floatarray v =
  let a = Float.Array.create v.len in
  for i = 0 to v.len - 1 do
    Float.Array.unsafe_set a i (unsafe_get v i)
  done;
  a

(* ------------------------------------------------------------------ *)
(* Row-major panel primitives                                          *)
(* ------------------------------------------------------------------ *)

let check_panel name ~data ~rs ~row0 ~row1 ~col0 ~col1 =
  if rs <= 0 then invalid_arg (name ^ ": non-positive row stride");
  if row0 < 0 || col0 < 0 || col1 > rs then invalid_arg (name ^ ": panel out of bounds");
  if row1 > row0 && col1 > col0 then begin
    let last = ((row1 - 1) * rs) + (col1 - 1) in
    if last >= Float.Array.length data then invalid_arg (name ^ ": panel exceeds storage")
  end

let col_sqnorms ~data ~rs ~row0 ~row1 ~col0 ~col1 =
  check_panel "Kernel.col_sqnorms" ~data ~rs ~row0 ~row1 ~col0 ~col1;
  let width = max 0 (col1 - col0) in
  let acc = Float.Array.make width 0.0 in
  for i = row0 to row1 - 1 do
    let base = i * rs in
    for k = 0 to width - 1 do
      let x = Float.Array.unsafe_get data (base + col0 + k) in
      Float.Array.unsafe_set acc k (Float.Array.unsafe_get acc k +. (x *. x))
    done
  done;
  acc

let reflect_panel ~tau ~v ~data ~rs ~row0 ~col0 ~col1 =
  if tau <> 0.0 then begin
    let len = Float.Array.length v in
    check_panel "Kernel.reflect_panel" ~data ~rs ~row0 ~row1:(row0 + len) ~col0 ~col1;
    let width = max 0 (col1 - col0) in
    if width > 0 then begin
      (* w = tau * (V^T A): per-column accumulation in ascending row
         order, traversed row-major so the storage is streamed. *)
      let w = Float.Array.make width 0.0 in
      for i = 0 to len - 1 do
        let vi = Float.Array.unsafe_get v i in
        let base = ((row0 + i) * rs) + col0 in
        for k = 0 to width - 1 do
          Float.Array.unsafe_set w k
            (Float.Array.unsafe_get w k
            +. (vi *. Float.Array.unsafe_get data (base + k)))
        done
      done;
      for k = 0 to width - 1 do
        Float.Array.unsafe_set w k (tau *. Float.Array.unsafe_get w k)
      done;
      (* A <- A - v w^T, skipping exactly-zero coefficients so columns
         already in the reflector's fixed space are left untouched
         bit-for-bit. *)
      for i = 0 to len - 1 do
        let vi = Float.Array.unsafe_get v i in
        let base = ((row0 + i) * rs) + col0 in
        for k = 0 to width - 1 do
          let s = Float.Array.unsafe_get w k in
          if s <> 0.0 then
            Float.Array.unsafe_set data (base + k)
              (Float.Array.unsafe_get data (base + k) -. (s *. vi))
        done
      done
    end
  end
