(* Backend-dispatching kernel layer.

   The arithmetic lives in kernel_body.mlt, instantiated as the
   monomorphic twins [Kernel_fa]/[Kernel_ba] (fast: the backend is a
   module alias, element access is a compiler primitive) and as the
   [Make] functor (reference path).  This module owns the public
   [view] over dynamic {!Backend.buf} storage: every entry point
   matches the storage tag once and runs a monomorphic loop; only
   mixed-backend binary operations fall back to the generic
   element-dispatching loops below, which execute the identical
   floating-point operations in the identical order. *)

module Make = Kernel_make.Make

type view = { data : Backend.buf; off : int; inc : int; len : int }

let view data ~off ~inc ~len =
  if len < 0 then invalid_arg "Kernel.view: negative length";
  if len > 0 then begin
    let last = off + ((len - 1) * inc) in
    let bound = Backend.length data in
    if off < 0 || off >= bound || last < 0 || last >= bound then
      invalid_arg "Kernel.view: view exceeds storage"
  end;
  { data; off; inc; len }

let full data = { data; off = 0; inc = 1; len = Backend.length data }
let len v = v.len
let backend v = Backend.id_of v.data
let storage v = v.data

let sub v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > v.len then
    invalid_arg "Kernel.sub: range out of bounds";
  { v with off = v.off + (pos * v.inc); len }

(* Re-tag a validated public view as a monomorphic one.  The bounds
   were proved by [view]/[full]; the twins' record fields are public
   within the library, so this is just a re-wrap. *)
let fa v a : Kernel_fa.view =
  { Kernel_fa.data = a; off = v.off; inc = v.inc; len = v.len }

let ba v a : Kernel_ba.view =
  { Kernel_ba.data = a; off = v.off; inc = v.inc; len = v.len }

let unsafe_get v i = Backend.unsafe_get v.data (v.off + (i * v.inc))
let unsafe_set v i x = Backend.unsafe_set v.data (v.off + (i * v.inc)) x

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Kernel.get: index out of bounds";
  unsafe_get v i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Kernel.set: index out of bounds";
  unsafe_set v i x

let check_same_len name x y =
  if x.len <> y.len then invalid_arg (name ^ ": length mismatch")

(* ---- unary operations: one dispatch, then a monomorphic loop ---- *)

let fill v x =
  match v.data with
  | Backend.Fa a -> Kernel_fa.fill (fa v a) x
  | Backend.Ba a -> Kernel_ba.fill (ba v a) x

let scal alpha v =
  match v.data with
  | Backend.Fa a -> Kernel_fa.scal alpha (fa v a)
  | Backend.Ba a -> Kernel_ba.scal alpha (ba v a)

let amax v =
  match v.data with
  | Backend.Fa a -> Kernel_fa.amax (fa v a)
  | Backend.Ba a -> Kernel_ba.amax (ba v a)

let asum v =
  match v.data with
  | Backend.Fa a -> Kernel_fa.asum (fa v a)
  | Backend.Ba a -> Kernel_ba.asum (ba v a)

let sqnorm v =
  match v.data with
  | Backend.Fa a -> Kernel_fa.sqnorm (fa v a)
  | Backend.Ba a -> Kernel_ba.sqnorm (ba v a)

let nrm2 v =
  match v.data with
  | Backend.Fa a -> Kernel_fa.nrm2 (fa v a)
  | Backend.Ba a -> Kernel_ba.nrm2 (ba v a)

let iteri f v =
  match v.data with
  | Backend.Fa a -> Kernel_fa.iteri f (fa v a)
  | Backend.Ba a -> Kernel_ba.iteri f (ba v a)

let fold_left f init v =
  match v.data with
  | Backend.Fa a -> Kernel_fa.fold_left f init (fa v a)
  | Backend.Ba a -> Kernel_ba.fold_left f init (ba v a)

let to_floatarray v =
  match v.data with
  | Backend.Fa a -> Kernel_fa.to_floatarray (fa v a)
  | Backend.Ba a -> Kernel_ba.to_floatarray (ba v a)

(* ---- binary operations: homogeneous pairs go monomorphic; mixed
   pairs run the same loops through the dynamic accessors ---- *)

let copy ~src ~dst =
  match (src.data, dst.data) with
  | Backend.Fa s, Backend.Fa d -> Kernel_fa.copy ~src:(fa src s) ~dst:(fa dst d)
  | Backend.Ba s, Backend.Ba d -> Kernel_ba.copy ~src:(ba src s) ~dst:(ba dst d)
  | _ ->
    check_same_len "Kernel.copy" src dst;
    for i = 0 to src.len - 1 do
      unsafe_set dst i (unsafe_get src i)
    done

let swap x y =
  match (x.data, y.data) with
  | Backend.Fa a, Backend.Fa b -> Kernel_fa.swap (fa x a) (fa y b)
  | Backend.Ba a, Backend.Ba b -> Kernel_ba.swap (ba x a) (ba y b)
  | _ ->
    check_same_len "Kernel.swap" x y;
    for i = 0 to x.len - 1 do
      let t = unsafe_get x i in
      unsafe_set x i (unsafe_get y i);
      unsafe_set y i t
    done

let dot x y =
  match (x.data, y.data) with
  | Backend.Fa a, Backend.Fa b -> Kernel_fa.dot (fa x a) (fa y b)
  | Backend.Ba a, Backend.Ba b -> Kernel_ba.dot (ba x a) (ba y b)
  | _ ->
    check_same_len "Kernel.dot" x y;
    let s = ref 0.0 in
    for i = 0 to x.len - 1 do
      s := !s +. (unsafe_get x i *. unsafe_get y i)
    done;
    !s

let axpy ~alpha ~x ~y =
  match (x.data, y.data) with
  | Backend.Fa a, Backend.Fa b -> Kernel_fa.axpy ~alpha ~x:(fa x a) ~y:(fa y b)
  | Backend.Ba a, Backend.Ba b -> Kernel_ba.axpy ~alpha ~x:(ba x a) ~y:(ba y b)
  | _ ->
    check_same_len "Kernel.axpy" x y;
    for i = 0 to x.len - 1 do
      unsafe_set y i (unsafe_get y i +. (alpha *. unsafe_get x i))
    done

(* ---- row-major panel primitives ---- *)

let check_panel name ~data ~rs ~row0 ~row1 ~col0 ~col1 =
  if rs <= 0 then invalid_arg (name ^ ": non-positive row stride");
  if row0 < 0 || col0 < 0 || col1 > rs then invalid_arg (name ^ ": panel out of bounds");
  if row1 > row0 && col1 > col0 then begin
    let last = ((row1 - 1) * rs) + (col1 - 1) in
    if last >= Backend.length data then invalid_arg (name ^ ": panel exceeds storage")
  end

let col_sqnorms ~data ~rs ~row0 ~row1 ~col0 ~col1 =
  match data with
  | Backend.Fa a -> Kernel_fa.col_sqnorms ~data:a ~rs ~row0 ~row1 ~col0 ~col1
  | Backend.Ba a -> Kernel_ba.col_sqnorms ~data:a ~rs ~row0 ~row1 ~col0 ~col1

let reflect_panel ~tau ~v ~data ~rs ~row0 ~col0 ~col1 =
  match (v, data) with
  | Backend.Fa vv, Backend.Fa a ->
    Kernel_fa.reflect_panel ~tau ~v:vv ~data:a ~rs ~row0 ~col0 ~col1
  | Backend.Ba vv, Backend.Ba a ->
    Kernel_ba.reflect_panel ~tau ~v:vv ~data:a ~rs ~row0 ~col0 ~col1
  | _ ->
    (* Mixed reflector/panel backends: the same two streaming passes
       through the dynamic accessors, identical FP order. *)
    if tau <> 0.0 then begin
      let len = Backend.length v in
      check_panel "Kernel.reflect_panel" ~data ~rs ~row0 ~row1:(row0 + len)
        ~col0 ~col1;
      let width = max 0 (col1 - col0) in
      if width > 0 then begin
        let w = Array.make width 0.0 in
        for i = 0 to len - 1 do
          let vi = Backend.unsafe_get v i in
          let base = ((row0 + i) * rs) + col0 in
          for k = 0 to width - 1 do
            Array.unsafe_set w k
              (Array.unsafe_get w k +. (vi *. Backend.unsafe_get data (base + k)))
          done
        done;
        for k = 0 to width - 1 do
          Array.unsafe_set w k (tau *. Array.unsafe_get w k)
        done;
        for i = 0 to len - 1 do
          let vi = Backend.unsafe_get v i in
          let base = ((row0 + i) * rs) + col0 in
          for k = 0 to width - 1 do
            let s = Array.unsafe_get w k in
            if s <> 0.0 then
              Backend.unsafe_set data (base + k)
                (Backend.unsafe_get data (base + k) -. (s *. vi))
          done
        done
      end
    end
