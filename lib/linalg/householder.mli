(** Householder reflectors.

    A reflector is H = I - tau * v * v^T with v(0) = 1 by the compact
    storage convention; [v] is stored as a {!Vec.t} on flat unboxed
    storage.  Reflectors are built directly from no-copy column views
    ({!of_view}) and applied to whole trailing panels in one
    row-major pass ({!apply_to_cols}), so a factorization step never
    copies columns in or out. *)

type reflector = { v : Vec.t; tau : float }
(** [v] has the length of the (sub)column it annihilates; [tau = 0.]
    encodes the identity (nothing to annihilate). *)

val of_view : Kernel.view -> reflector * float
(** [of_view x] builds the reflector that maps the viewed column to
    [(beta, 0, ..., 0)] and returns [(h, beta)].  The sign of [beta]
    is chosen opposite to the leading entry for numerical stability.
    For a zero column the identity reflector and [beta = 0.] are
    returned.  The view is read-only here — construction does not
    modify the storage it aliases. *)

val of_column : Vec.t -> reflector * float
(** {!of_view} on the whole vector. *)

val apply_to_view : reflector -> Kernel.view -> unit
(** In-place application [x <- H x] through an aliasing view (used to
    apply a reflector to the tail of a longer vector without slicing
    out a copy). *)

val apply_to_vec : reflector -> Vec.t -> unit
(** In-place application [x <- H x]. *)

val apply_to_cols : reflector -> Mat.t -> row0:int -> col0:int -> unit
(** Applies the reflector to the trailing submatrix
    [a.(row0 .. row0+len-1, col0 ..)] in place, where [len] is the
    reflector length; implemented as {!Kernel.reflect_panel}, two
    streaming row-major passes over the panel. *)
