(** Schema-versioned run manifests.

    A manifest is the durable telemetry artifact of one pipeline or
    benchmark run: the configuration (with a content digest), per-span
    timing aggregates with fixed-bucket latency {!Histogram}s
    (p50/p90/p99 readout) and per-stage GC deltas, every counter and
    gauge, ledger fate totals, benchmark measurements, the pre-flight
    lint summary, and content hashes of the run's shard/ledger
    artifacts.

    Decoding is strict: unknown schema versions, foreign histogram
    schemes, missing or mistyped fields and a config section that no
    longer matches its recorded digest are all rejected with an error
    naming the problem.

    {!diff} classifies every field as {e timing} (expected to differ
    between two runs of the same config: durations, quantiles, bucket
    shapes, GC words, metric values) or {e non-timing} (must be
    bit-equal for identical configs: config, counters, gauges, totals,
    lint, artifact hashes, span names and counts).  [analyze report
    --diff] fails when any non-timing field differs. *)

val schema_version : int
val kind_name : string

type lint_summary = { errors : int; warns : int; infos : int }

type span_stat = {
  span : string;
  count : int;
  total_ns : float;
  min_ns : float;
  max_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  buckets : int array;
  gc_minor_words : float;
  gc_major_words : float;
  gc_promoted_words : float;
  gc_compactions : int;
}

type t = {
  version : int;
  source : string;
  label : string;
  created_unix : float;
  config : (string * string) list;
  config_digest : string;
  spans : span_stat list;
  counters : (string * float) list;
  gauges : (string * float) list;
  totals : (string * float) list;
  metrics : (string * float) list;
  gc : (string * float) list;
  lint : lint_summary option;
  artifacts : (string * string) list;
}

val fnv64_hex : string -> string
(** FNV-1a 64-bit hash, rendered as 16 hex digits — the content hash
    used for config digests and artifact hashes. *)

val digest_config : (string * string) list -> string
(** Digest of the canonical (sorted, [k=v] per line) rendering of a
    config; order-insensitive. *)

val of_recorder :
  source:string ->
  label:string ->
  ?config:(string * string) list ->
  ?totals:(string * float) list ->
  ?metrics:(string * float) list ->
  ?gc:(string * float) list ->
  ?lint:lint_summary ->
  ?artifacts:(string * string) list ->
  Recorder.t ->
  t
(** Snapshot a {!Recorder} into a manifest.  All association lists are
    re-sorted by key; [created_unix] is stamped from the wall clock. *)

val equal : t -> t -> bool
(** Structural equality, NaN-tolerant (two NaN quantiles compare
    equal). *)

val find_metric : t -> string -> float option
val find_counter : t -> string -> float option

val to_json : t -> Jsonio.t

val of_json : Jsonio.t -> (t, string) result
(** Strict decode; recomputes and verifies the config digest. *)

val render : t -> string
(** Human-readable rendering (config, lint, span table with
    p50/p90/p99, counters/gauges/totals/metrics/gc/artifacts). *)

(** {1 Diffing} *)

type change = {
  path : string;
  timing : bool;
  before : string;
  after : string;
}

val diff : t -> t -> change list
(** Field-by-field comparison, deterministically ordered.
    [created_unix] is never reported. *)

val non_timing : change list -> change list
val timing_only : change list -> change list

val render_changes : ?show_timing:bool -> change list -> string
(** Summary line, then the non-timing section and — with [show_timing]
    (the default) — the timing section; with [~show_timing:false]
    timing deltas are counted but not listed (the expected-noise case:
    the caller only wants the non-timing verdict). *)

val backend : t -> string option
(** The storage backend recorded under the [backend] config key
    (pipeline manifests and linalg bench manifests record it; older
    manifests may not). *)

val cross_backend : t -> t -> (string * string) option
(** [cross_backend a b] is [Some (ba, bb)] when both manifests record
    a backend and they differ — the caller is comparing runs of the
    same computation on different storage backends, and the
    [config.backend]/[config_digest] differences {!diff} reports are
    the expected signature of that, not silent drift.  [analyze
    report --diff] uses this to label such comparisons explicitly. *)

val jobs : t -> string option
(** The executor concurrency recorded under the [jobs] config key
    (older manifests may not carry it). *)

val cross_jobs : t -> t -> (string * string) option
(** [cross_jobs a b] is [Some (ja, jb)] when both manifests record a
    jobs count and they differ — runs of the same computation at
    different concurrency, whose [config.jobs]/[config_digest]
    differences are expected (outputs are byte-identical across jobs
    by the executor contract). *)
