(** Folded-stack sink: flamegraph export of the span tree.

    Accumulates, per unique span stack, the {e self} time spent with
    exactly that stack open (child span time is attributed to the
    child's longer stack), and renders the standard folded format —

    {v pipeline;noise-filter 1203944 v}

    one line per stack, frames joined with [';'], the count an
    integer nanosecond total — directly consumable by [flamegraph.pl]
    and speedscope.  Because counts are self time, a frame's rendered
    width (the sum over all lines it prefixes) equals its inclusive
    time, with no double counting.

    Frame names are sanitized (spaces and semicolons become ['_']) so
    the line grammar [frame(;frame)* SP digits] always holds; lines
    are sorted, so output is deterministic for deterministic span
    sequences. *)

type t

val create : unit -> t
val sink : t -> Sink.t

val stacks : t -> (string * int64) list
(** The accumulated (stack, self ns) pairs, sorted by stack. *)

val contents : t -> string
(** The folded document (possibly empty). *)

val write_file : t -> string -> unit
