type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type t = {
  on_span_start : id:int -> parent:int -> name:string -> ts_ns:int64 -> unit;
  on_span_end :
    id:int ->
    name:string ->
    ts_ns:int64 ->
    dur_ns:int64 ->
    attrs:(string * attr) list ->
    unit;
  on_counter : name:string -> delta:float -> total:float -> ts_ns:int64 -> unit;
  on_gauge : name:string -> value:float -> ts_ns:int64 -> unit;
}

let null =
  {
    on_span_start = (fun ~id:_ ~parent:_ ~name:_ ~ts_ns:_ -> ());
    on_span_end = (fun ~id:_ ~name:_ ~ts_ns:_ ~dur_ns:_ ~attrs:_ -> ());
    on_counter = (fun ~name:_ ~delta:_ ~total:_ ~ts_ns:_ -> ());
    on_gauge = (fun ~name:_ ~value:_ ~ts_ns:_ -> ());
  }

let attr_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
