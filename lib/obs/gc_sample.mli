(** GC and allocation sampling over [Gc.quick_stat] (no heap walk, no
    collection forced).  Samples double as absolute snapshots
    ({!take}) and as deltas between snapshots ({!delta}); the
    recorder accumulates per-stage deltas for the run manifest. *)

type t = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (** Absolute heap size at sample time (words). *)
  top_heap_words : int;  (** Process-wide peak at sample time. *)
}

val zero : t

val take : unit -> t

val delta : before:t -> after:t -> t
(** Counters subtract; [heap_words]/[top_heap_words] keep the [after]
    reading. *)

val add : t -> t -> t
(** Counters add; heap levels take the max (peak across stages). *)
