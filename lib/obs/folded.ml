(* Folded-stack accumulation for flamegraph export.

   The sink mirrors the collector's span stack.  When a span ends, its
   self time (duration minus the time spent in child spans) is added
   to the bucket keyed by the ';'-joined stack up to and including
   that span, and its full duration is charged to the parent frame's
   child accumulator.  Self-time bucketing is what makes the folded
   semantics correct: flamegraph.pl widths sum every line a frame
   prefixes, so inclusive counts would double-count children. *)

type frame = {
  name : string;  (* sanitized *)
  mutable child_ns : int64;  (* time spent in already-closed children *)
}

type t = {
  totals : (string, int64 ref) Hashtbl.t;  (* stack -> self ns *)
  mutable stack : frame list;  (* innermost first *)
}

let create () = { totals = Hashtbl.create 64; stack = [] }

(* Folded grammar: frames may not contain the separator characters. *)
let sanitize name =
  String.map (fun c -> if c = ';' || c = ' ' || c = '\n' then '_' else c) name

let stack_key frames =
  String.concat ";" (List.rev_map (fun f -> f.name) frames)

let add t key ns =
  if Int64.compare ns 0L > 0 then begin
    let cell =
      match Hashtbl.find_opt t.totals key with
      | Some c -> c
      | None ->
        let c = ref 0L in
        Hashtbl.add t.totals key c;
        c
    in
    cell := Int64.add !cell ns
  end

let sink t =
  {
    Sink.on_span_start =
      (fun ~id:_ ~parent:_ ~name ~ts_ns:_ ->
        t.stack <- { name = sanitize name; child_ns = 0L } :: t.stack);
    on_span_end =
      (fun ~id:_ ~name:_ ~ts_ns:_ ~dur_ns ~attrs:_ ->
        match t.stack with
        | [] -> ()  (* unbalanced end: ignore, like the other sinks *)
        | frame :: rest ->
          let key = stack_key t.stack in
          let self = Int64.sub dur_ns frame.child_ns in
          add t key (Int64.max 0L self);
          (match rest with
          | parent :: _ -> parent.child_ns <- Int64.add parent.child_ns dur_ns
          | [] -> ());
          t.stack <- rest);
    on_counter = (fun ~name:_ ~delta:_ ~total:_ ~ts_ns:_ -> ());
    on_gauge = (fun ~name:_ ~value:_ ~ts_ns:_ -> ());
  }

let stacks t =
  Hashtbl.fold (fun k c acc -> (k, !c) :: acc) t.totals []
  |> List.sort compare

let contents t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, ns) -> Printf.bprintf buf "%s %Ld\n" k ns)
    (stacks t);
  Buffer.contents buf

let write_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (contents t))
