(* GC and allocation sampling, built on [Gc.quick_stat] (cheap: no
   heap walk, no collection).  A sample is either an absolute
   snapshot or a delta between two snapshots; deltas accumulate per
   stage in the recorder so a run manifest can attribute allocation
   (minor/major words) and compactions to the stage that caused
   them. *)

type t = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (* absolute at sample time *)
  top_heap_words : int;  (* process-wide peak at sample time *)
}

let zero =
  {
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
    heap_words = 0;
    top_heap_words = 0;
  }

let take () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
  }

(* Counters subtract; heap levels keep the [after] reading (a delta's
   heap fields answer "where did this stage leave the heap"). *)
let delta ~before ~after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
    heap_words = after.heap_words;
    top_heap_words = after.top_heap_words;
  }

(* Counters add; heap levels take the peak. *)
let add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    major_words = a.major_words +. b.major_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
    compactions = a.compactions + b.compactions;
    heap_words = max a.heap_words b.heap_words;
    top_heap_words = max a.top_heap_words b.top_heap_words;
  }
