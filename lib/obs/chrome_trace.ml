type t = {
  buf : Buffer.t;
  epoch_ns : int64;
  mutable events : int;
}

let create () = { buf = Buffer.create 4096; epoch_ns = Clock.now_ns (); events = 0 }

(* RFC 8259 string escaping, enough for event and attribute names. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number f =
  if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let attr_json = function
  | Sink.Str s -> escape s
  | Sink.Int i -> string_of_int i
  | Sink.Float f -> number f
  | Sink.Bool b -> string_of_bool b

let ts_us t ts_ns = Int64.to_float (Int64.sub ts_ns t.epoch_ns) /. 1e3

let add_event t fields =
  if t.events > 0 then Buffer.add_string t.buf ",\n";
  Buffer.add_char t.buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char t.buf ',';
      Buffer.add_string t.buf (escape k);
      Buffer.add_char t.buf ':';
      Buffer.add_string t.buf v)
    fields;
  Buffer.add_char t.buf '}';
  t.events <- t.events + 1

let common t ~name ~ph ~ts_ns =
  [
    ("name", escape name);
    ("ph", escape ph);
    ("ts", Printf.sprintf "%.3f" (ts_us t ts_ns));
    ("pid", "1");
    ("tid", "1");
  ]

let args_json attrs =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (escape k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (attr_json v))
    attrs;
  Buffer.add_char buf '}';
  Buffer.contents buf

let sink t =
  {
    Sink.on_span_start =
      (fun ~id:_ ~parent:_ ~name ~ts_ns ->
        add_event t (common t ~name ~ph:"B" ~ts_ns));
    on_span_end =
      (fun ~id:_ ~name ~ts_ns ~dur_ns:_ ~attrs ->
        let fields = common t ~name ~ph:"E" ~ts_ns in
        let fields =
          if attrs = [] then fields else fields @ [ ("args", args_json attrs) ]
        in
        add_event t fields);
    on_counter =
      (fun ~name ~delta:_ ~total ~ts_ns ->
        add_event t
          (common t ~name ~ph:"C" ~ts_ns
          @ [ ("args", args_json [ ("value", Sink.Float total) ]) ]));
    on_gauge =
      (fun ~name ~value ~ts_ns ->
        add_event t
          (common t ~name ~ph:"C" ~ts_ns
          @ [ ("args", args_json [ ("value", Sink.Float value) ]) ]));
  }

let contents t = "[\n" ^ Buffer.contents t.buf ^ "\n]\n"

let write_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (contents t))
