(* The manifest-feeding sink: per-span-name timing aggregates with a
   fixed-bucket duration histogram and accumulated GC deltas, plus
   counter deltas and last-write-wins gauges — everything a run
   manifest snapshots, in structured (not rendered) form.

   Unlike [Summary] (a human-readable table), the recorder keeps the
   full distribution of each span's durations and samples the GC
   around every span, so per-stage allocation attributes to the stage
   that allocated. *)

type span_agg = {
  mutable count : int;
  mutable total_ns : float;
  mutable min_ns : float;
  mutable max_ns : float;
  hist : Histogram.t;
  mutable gc : Gc_sample.t;  (* accumulated per-span deltas *)
}

type t = {
  spans : (string, span_agg) Hashtbl.t;
  counters : (string, float ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  open_gc : (int, Gc_sample.t) Hashtbl.t;  (* span id -> start snapshot *)
}

let create () =
  {
    spans = Hashtbl.create 32;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    open_gc = Hashtbl.create 16;
  }

let sink t =
  {
    Sink.on_span_start =
      (fun ~id ~parent:_ ~name:_ ~ts_ns:_ ->
        Hashtbl.replace t.open_gc id (Gc_sample.take ()));
    on_span_end =
      (fun ~id ~name ~ts_ns:_ ~dur_ns ~attrs:_ ->
        let gc_delta =
          match Hashtbl.find_opt t.open_gc id with
          | Some before ->
            Hashtbl.remove t.open_gc id;
            Gc_sample.delta ~before ~after:(Gc_sample.take ())
          | None -> Gc_sample.zero
        in
        let dur = Int64.to_float dur_ns in
        (match Hashtbl.find_opt t.spans name with
        | Some a ->
          a.count <- a.count + 1;
          a.total_ns <- a.total_ns +. dur;
          if dur < a.min_ns then a.min_ns <- dur;
          if dur > a.max_ns then a.max_ns <- dur;
          Histogram.observe a.hist dur;
          a.gc <- Gc_sample.add a.gc gc_delta
        | None ->
          let hist = Histogram.create () in
          Histogram.observe hist dur;
          Hashtbl.add t.spans name
            {
              count = 1;
              total_ns = dur;
              min_ns = dur;
              max_ns = dur;
              hist;
              gc = gc_delta;
            }));
    on_counter =
      (fun ~name ~delta ~total:_ ~ts_ns:_ ->
        match Hashtbl.find_opt t.counters name with
        | Some cell -> cell := !cell +. delta
        | None -> Hashtbl.add t.counters name (ref delta));
    on_gauge =
      (fun ~name ~value ~ts_ns:_ ->
        match Hashtbl.find_opt t.gauges name with
        | Some cell -> cell := value
        | None -> Hashtbl.add t.gauges name (ref value));
  }

let spans t =
  Hashtbl.fold (fun name a acc -> (name, a) :: acc) t.spans []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t =
  Hashtbl.fold (fun name c acc -> (name, !c) :: acc) t.counters []
  |> List.sort compare

let gauges t =
  Hashtbl.fold (fun name c acc -> (name, !c) :: acc) t.gauges []
  |> List.sort compare
