(* Cross-run trend analysis: per-span quantile trajectories over a
   series of manifests of one config, with the bench_check regression
   policy applied to the last run and a largest-sustained-level-shift
   change-point marker on the p50 series.

   The threshold type is defined here so bench/bench_report.ml and the
   `analyze trend` gate share one policy — one notion of "regressed"
   across benches and stored pipeline runs. *)

type threshold = { ratio : float; slack_ms : float }

let default_threshold = { ratio = 3.0; slack_ms = 5.0 }

let limit_of ~threshold baseline =
  Float.max (baseline *. threshold.ratio) (baseline +. threshold.slack_ms)

type point = {
  run : int;
  created_unix : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  total_ms : float;
  count : int;
}

type change_point = {
  at : int;
  before_mean_ms : float;
  after_mean_ms : float;
  shift_ms : float;
  significant : bool;
}

type span_trend = {
  span : string;
  points : point list;
  baseline_p50_ms : float;
  current_p50_ms : float;
  limit_p50_ms : float;
  regressed_p50 : bool;
  baseline_p99_ms : float;
  current_p99_ms : float;
  limit_p99_ms : float;
  regressed_p99 : bool;
  change_point : change_point option;
}

type t = {
  config_digest : string;
  label : string;
  runs : int;
  threshold : threshold;
  spans : span_trend list;
}

let ms ns = ns /. 1e6

(* Median of a non-empty list (mean of the middle pair for even
   lengths) — the baseline statistic: robust to one earlier outlier,
   unlike the mean, and exact for the common flat series. *)
let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Largest sustained level shift on [series]: the split k (1 <= k < n)
   maximizing |mean(after) - mean(before)|.  Significant when either
   segment mean breaks the regression limit computed from the other —
   the same policy the last-run verdict uses, so a marker means "the
   gate would have fired across this boundary". *)
let find_change_point ~threshold points =
  let n = List.length points in
  if n < 3 then None
  else begin
    let series = List.map (fun p -> p.p50_ms) points in
    let best = ref None in
    for k = 1 to n - 1 do
      let before = List.filteri (fun i _ -> i < k) series in
      let after = List.filteri (fun i _ -> i >= k) series in
      let bm = mean before and am = mean after in
      let shift = Float.abs (am -. bm) in
      match !best with
      | Some (_, _, _, s) when s >= shift -> ()
      | _ -> best := Some (k, bm, am, shift)
    done;
    Option.map
      (fun (k, bm, am, shift) ->
        let significant =
          am > limit_of ~threshold bm || bm > limit_of ~threshold am
        in
        {
          at = (List.nth points k).run;
          before_mean_ms = bm;
          after_mean_ms = am;
          shift_ms = shift;
          significant;
        })
      !best
  end

let span_names (ms : Manifest.t list) =
  List.concat_map
    (fun (m : Manifest.t) ->
      List.map (fun (s : Manifest.span_stat) -> s.Manifest.span) m.Manifest.spans)
    ms
  |> List.sort_uniq compare

let analyze ?(threshold = default_threshold) ?seqs (manifests : Manifest.t list) =
  match manifests with
  | [] | [ _ ] -> Error "trend needs at least two runs of the same config"
  | first :: rest ->
    let digest = first.Manifest.config_digest in
    let bad =
      List.find_opt
        (fun (m : Manifest.t) -> m.Manifest.config_digest <> digest)
        rest
    in
    (match bad with
    | Some m ->
      Error
        (Printf.sprintf
           "runs are not one trajectory: config digest %s vs %s" digest
           m.Manifest.config_digest)
    | None -> (
      let n = List.length manifests in
      match seqs with
      | Some s when List.length s <> n ->
        Error
          (Printf.sprintf "%d sequence labels for %d manifests"
             (List.length s) n)
      | _ ->
        let seqs =
          match seqs with Some s -> s | None -> List.init n Fun.id
        in
        let spans =
          List.filter_map
            (fun name ->
              let points =
                List.filter_map
                  (fun (run, (m : Manifest.t)) ->
                    Option.map
                      (fun (s : Manifest.span_stat) ->
                        {
                          run;
                          created_unix = m.Manifest.created_unix;
                          p50_ms = ms s.Manifest.p50_ns;
                          p90_ms = ms s.Manifest.p90_ns;
                          p99_ms = ms s.Manifest.p99_ns;
                          total_ms = ms s.Manifest.total_ns;
                          count = s.Manifest.count;
                        })
                      (List.find_opt
                         (fun (s : Manifest.span_stat) ->
                           s.Manifest.span = name)
                         m.Manifest.spans))
                  (List.combine seqs manifests)
              in
              if List.length points < 2 then None
              else begin
                let earlier =
                  List.filteri (fun i _ -> i < List.length points - 1) points
                in
                let current = List.nth points (List.length points - 1) in
                let verdict extract =
                  let baseline = median (List.map extract earlier) in
                  let cur = extract current in
                  let limit = limit_of ~threshold baseline in
                  (baseline, cur, limit, cur > limit)
                in
                let b50, c50, l50, r50 = verdict (fun p -> p.p50_ms) in
                let b99, c99, l99, r99 = verdict (fun p -> p.p99_ms) in
                Some
                  {
                    span = name;
                    points;
                    baseline_p50_ms = b50;
                    current_p50_ms = c50;
                    limit_p50_ms = l50;
                    regressed_p50 = r50;
                    baseline_p99_ms = b99;
                    current_p99_ms = c99;
                    limit_p99_ms = l99;
                    regressed_p99 = r99;
                    change_point = find_change_point ~threshold points;
                  }
              end)
            (span_names manifests)
        in
        Ok
          {
            config_digest = digest;
            label = first.Manifest.label;
            runs = n;
            threshold;
            spans;
          }))

let regressions t =
  List.filter (fun s -> s.regressed_p50 || s.regressed_p99) t.spans

let change_points t =
  List.filter
    (fun s ->
      match s.change_point with Some c -> c.significant | None -> false)
    t.spans

let passed t = regressions t = []

let render t =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "trend: %s, config %s, %d runs (policy: current > max(baseline*%g, \
     baseline+%gms))\n"
    t.label t.config_digest t.runs t.threshold.ratio t.threshold.slack_ms;
  Printf.bprintf buf "%-24s %4s %10s %10s %10s %10s %10s  %s\n" "span" "runs"
    "base p50" "cur p50" "limit p50" "cur p90" "cur p99" "verdict";
  List.iter
    (fun s ->
      let current = List.nth s.points (List.length s.points - 1) in
      let verdict =
        if s.regressed_p50 || s.regressed_p99 then "REGRESSED"
        else "ok"
      in
      let marker =
        match s.change_point with
        | Some c when c.significant ->
          Printf.sprintf "  shift at run %d (%.3f -> %.3f ms)" c.at
            c.before_mean_ms c.after_mean_ms
        | _ -> ""
      in
      Printf.bprintf buf "%-24s %4d %10.3f %10.3f %10.3f %10.3f %10.3f  %s%s\n"
        s.span (List.length s.points) s.baseline_p50_ms s.current_p50_ms
        s.limit_p50_ms current.p90_ms current.p99_ms verdict marker)
    t.spans;
  let r = regressions t in
  Printf.bprintf buf "trend: %s (%d span(s) regressed, %d change point(s))\n"
    (if r = [] then "ok" else "REGRESSED")
    (List.length r)
    (List.length (change_points t));
  Buffer.contents buf

let point_to_json p =
  Jsonio.Obj
    [
      ("run", Jsonio.Num (float_of_int p.run));
      ("created_unix", Jsonio.Num p.created_unix);
      ("p50_ms", Jsonio.fnum p.p50_ms);
      ("p90_ms", Jsonio.fnum p.p90_ms);
      ("p99_ms", Jsonio.fnum p.p99_ms);
      ("total_ms", Jsonio.fnum p.total_ms);
      ("count", Jsonio.Num (float_of_int p.count));
    ]

let to_json t =
  Jsonio.Obj
    [
      ("config_digest", Jsonio.Str t.config_digest);
      ("label", Jsonio.Str t.label);
      ("runs", Jsonio.Num (float_of_int t.runs));
      ( "threshold",
        Jsonio.Obj
          [
            ("ratio", Jsonio.fnum t.threshold.ratio);
            ("slack_ms", Jsonio.fnum t.threshold.slack_ms);
          ] );
      ("passed", Jsonio.Bool (passed t));
      ( "spans",
        Jsonio.List
          (List.map
             (fun s ->
               Jsonio.Obj
                 [
                   ("span", Jsonio.Str s.span);
                   ("points", Jsonio.List (List.map point_to_json s.points));
                   ("baseline_p50_ms", Jsonio.fnum s.baseline_p50_ms);
                   ("current_p50_ms", Jsonio.fnum s.current_p50_ms);
                   ("limit_p50_ms", Jsonio.fnum s.limit_p50_ms);
                   ("regressed_p50", Jsonio.Bool s.regressed_p50);
                   ("baseline_p99_ms", Jsonio.fnum s.baseline_p99_ms);
                   ("current_p99_ms", Jsonio.fnum s.current_p99_ms);
                   ("limit_p99_ms", Jsonio.fnum s.limit_p99_ms);
                   ("regressed_p99", Jsonio.Bool s.regressed_p99);
                   ( "change_point",
                     match s.change_point with
                     | None -> Jsonio.Null
                     | Some c ->
                       Jsonio.Obj
                         [
                           ("at", Jsonio.Num (float_of_int c.at));
                           ("before_mean_ms", Jsonio.fnum c.before_mean_ms);
                           ("after_mean_ms", Jsonio.fnum c.after_mean_ms);
                           ("shift_ms", Jsonio.fnum c.shift_ms);
                           ("significant", Jsonio.Bool c.significant);
                         ] );
                 ])
             t.spans) );
    ]
