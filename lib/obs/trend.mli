(** Cross-run trend analysis over stored run manifests.

    Given the manifests of repeated runs of one configuration (in
    store-sequence order), builds per-span p50/p90/p99 trajectories
    and passes two verdicts on each span:

    - {e regression}: the last run's quantiles against a baseline (the
      median of every earlier run), using the same policy as the
      bench_check gate — [current > max(baseline*ratio,
      baseline+slack_ms)] — so a one-off slow final run fails exactly
      like a bench regression would;
    - {e change point}: the split of the series into a before/after
      pair maximizing the level shift between segment means; the
      marker is reported as significant when either side's mean breaks
      the regression limit computed from the other — a sustained shift
      the policy itself would flag, not mere jitter.

    The policy type lives here (not in bench/) so the pipeline trend
    gate and the benchmark gate share one definition. *)

type threshold = { ratio : float; slack_ms : float }

val default_threshold : threshold
(** ratio 3.0, slack 5 ms — deliberately loose, see bench_report. *)

val limit_of : threshold:threshold -> float -> float
(** [max (baseline *. ratio) (baseline +. slack_ms)]. *)

type point = {
  run : int;  (** Position in the series (store seq when known). *)
  created_unix : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  total_ms : float;
  count : int;
}

type change_point = {
  at : int;  (** First [run] of the after-segment. *)
  before_mean_ms : float;
  after_mean_ms : float;
  shift_ms : float;  (** [abs (after - before)]. *)
  significant : bool;
}

type span_trend = {
  span : string;
  points : point list;  (** Series order; at least 2 points. *)
  baseline_p50_ms : float;  (** Median of all points but the last. *)
  current_p50_ms : float;
  limit_p50_ms : float;
  regressed_p50 : bool;
  baseline_p99_ms : float;
  current_p99_ms : float;
  limit_p99_ms : float;
  regressed_p99 : bool;
  change_point : change_point option;  (** [None] for series < 3. *)
}

type t = {
  config_digest : string;
  label : string;
  runs : int;
  threshold : threshold;
  spans : span_trend list;  (** Sorted by span name. *)
}

val analyze :
  ?threshold:threshold ->
  ?seqs:int list ->
  Manifest.t list ->
  (t, string) result
(** Build the trend over manifests given oldest first.  All manifests
    must carry the same [config_digest] (runs of different configs are
    not a trajectory) and there must be at least two.  [seqs], when
    given, labels the points (store sequence numbers; must match the
    manifest count); otherwise points are numbered 0.. in order.
    Spans present in fewer than two runs are dropped. *)

val regressions : t -> span_trend list
(** Spans whose last run regressed on p50 or p99. *)

val change_points : t -> span_trend list
(** Spans with a significant sustained level shift. *)

val passed : t -> bool
(** No span regressed. *)

val render : t -> string
(** Table: one row per span — run count, baseline/current/limit p50,
    p90/p99 of the last run, verdict, change-point marker. *)

val to_json : t -> Jsonio.t
