(** Structured tracing and metrics for the analysis pipeline.

    A process-wide collector of {e spans} (nested, monotonic-clock
    timed regions), {e counters} (accumulating totals) and {e gauges}
    (last-write-wins levels), fanned out to pluggable {!Sink}s:

    - no sink installed (the default): every entry point is a single
      flag check and returns immediately — instrumented code behaves
      bit-identically to uninstrumented code;
    - {!Sink.null}: the full recording path runs but nothing is kept
      (the inertness reference for tests);
    - {!Summary}: per-span timing aggregates plus counter totals,
      rendered as a plain-text table;
    - {!Chrome_trace}: a [chrome://tracing]-loadable JSON trace.

    Instrumentation discipline for hot paths: guard anything that
    would allocate (attribute values, formatted names, closures worth
    avoiding) behind {!enabled}; bare {!incr}/{!begin_span} calls with
    constant names are safe to leave unguarded.

    The collector's global state (sinks, span stack, counter tables)
    belongs to the main domain.  Code dispatched to worker domains by
    [Executor] must be wrapped in {!with_capture}, which buffers the
    task's events domain-locally; the caller then {!replay}s the
    buffers on the main domain in task-index order.  Sinks therefore
    always observe one deterministic sequential event stream and never
    need their own locking. *)

module Sink = Sink
module Clock = Clock
module Chrome_trace = Chrome_trace
module Summary = Summary
module Memory = Memory
module Histogram = Histogram
module Gc_sample = Gc_sample
module Recorder = Recorder
module Manifest = Manifest
module Store = Store
module Trend = Trend
module Folded = Folded
module Progress = Progress

val enabled : unit -> bool
(** True iff at least one sink is installed.  The disabled fast path
    of every other entry point. *)

val install : Sink.t -> unit
(** Add a sink (multiple sinks all receive every event). *)

val uninstall : Sink.t -> unit
(** Remove one previously installed sink (matched by physical
    equality); counters, gauges and other sinks are untouched.  When
    the last sink goes, the collector returns to the zero-overhead
    disabled state.  Used for scoped collection (e.g. manifest
    recording around one run). *)

val clear : unit -> unit
(** Remove all sinks, drop any open spans, and reset all counters and
    gauges — back to the zero-overhead state. *)

(** {1 Spans} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span.  The span is closed even if
    [f] raises.  When disabled this is exactly [f ()]. *)

val begin_span : string -> int
(** Allocation-free span opening for paths where a closure is
    unwelcome.  Returns a handle for {!end_span}; returns 0 (and does
    nothing) when disabled. *)

val end_span : int -> unit
(** Close the span with this handle.  A 0 handle is a no-op.  Spans
    opened after it and still open are closed too (exception-path
    robustness); an unknown handle is ignored. *)

(** {1 Span attributes}

    Attach to the innermost open span; delivered with its end event.
    All are no-ops when disabled or when no span is open. *)

val attr_str : string -> string -> unit
val attr_int : string -> int -> unit
val attr_float : string -> float -> unit
val attr_bool : string -> bool -> unit

(** {1 Counters and gauges} *)

val incr : string -> unit
(** Add 1 to a counter. *)

val add : string -> float -> unit
(** Add an arbitrary delta to a counter. *)

val gauge : string -> float -> unit
(** Set a gauge level. *)

val counter : string -> float
(** Current accumulated value (0 if never incremented). *)

val counters : unit -> (string * float) list
(** Snapshot of all counters, sorted by name. *)

val reset_counters : unit -> unit
(** Zero all counters and gauges (sinks are untouched) — used to
    measure per-phase deltas. *)

(** {1 Per-domain capture}

    Support for running instrumented code on worker domains without
    touching the main domain's collector state. *)

type capture
(** A buffered stream of span/counter/gauge events recorded by one
    task. *)

val with_capture : (unit -> 'a) -> 'a * capture option
(** [with_capture f] runs [f] with every collector entry point
    redirected into a fresh domain-local buffer, restoring the
    previous redirection afterwards.  Returns [f ()]'s value together
    with the buffer ([None] when the collector is disabled — [f] then
    ran with the usual zero-overhead no-ops).  Safe to call on any
    domain; spans left open by [f] are closed at scope exit.  On
    exception the buffer is discarded and the exception propagates. *)

val replay : capture -> unit
(** Replay a captured buffer into the main collector: spans get fresh
    global ids (top-level captured spans are reparented under the
    currently open span), counter deltas go through the normal
    accumulation path, gauges are re-set.  Call on the main domain
    only, once per capture, in the task order whose interleaving you
    want sinks to observe.  No-op when the collector is disabled. *)

(** {1 Live progress} *)

val with_progress : Progress.t -> (unit -> 'a) -> 'a
(** Run [f] with a progress sink installed and subscribed to the
    shard tap ({!Progress.note_shard}); both are torn down when [f]
    returns or raises. *)
