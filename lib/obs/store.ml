(* The on-disk run store: one canonical-JSON manifest file per run
   under DIR/runs/, indexed by DIR/index.json.

   Identity is content: a run's hash is the FNV-1a 64 of its manifest
   text, so ingesting the same file twice dedupes while two real runs
   of one config (different timings) accumulate as trajectory points.
   The index carries its own digest over the entry table, and every
   load re-hashes the stored file against the indexed hash — the same
   tamper discipline the manifest applies to its config section. *)

let schema_version = 1
let kind_name = "run-store-index"
let default_dir = Filename.concat ".analyze" "store"

type entry = {
  seq : int;
  config_digest : string;
  source : string;
  label : string;
  backend : string option;
  created_unix : float;
  manifest_hash : string;
  file : string;
}

type t = {
  root : string;
  mutable next_seq : int;
  mutable all : entry list;  (* ascending by seq *)
}

type outcome = Ingested of entry | Deduped of entry

let dir t = t.root
let entries t = t.all
let index_path root = Filename.concat root "index.json"
let runs_dir root = Filename.concat root "runs"
let run_path root e = Filename.concat (runs_dir root) e.file

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic-enough writes: temp file in the same directory, then rename,
   so a crash mid-write never leaves a half-written index. *)
let write_file_atomic path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text);
  Sys.rename tmp path

(* The canonical line rendering an entry contributes to the index
   digest — order-sensitive (entries are kept sorted by seq), so a
   reordered or edited table no longer matches. *)
let entry_line e =
  Printf.sprintf "%d|%s|%s|%s|%s|%.17g|%s|%s\n" e.seq e.config_digest e.source
    e.label
    (Option.value e.backend ~default:"")
    e.created_unix e.manifest_hash e.file

let entries_digest all =
  Manifest.fnv64_hex (String.concat "" (List.map entry_line all))

(* ------------------------------------------------------------------ *)
(* Index JSON                                                          *)
(* ------------------------------------------------------------------ *)

let entry_to_json e =
  Jsonio.Obj
    [
      ("seq", Jsonio.Num (float_of_int e.seq));
      ("config_digest", Jsonio.Str e.config_digest);
      ("source", Jsonio.Str e.source);
      ("label", Jsonio.Str e.label);
      ( "backend",
        match e.backend with None -> Jsonio.Null | Some b -> Jsonio.Str b );
      ("created_unix", Jsonio.Num e.created_unix);
      ("manifest_hash", Jsonio.Str e.manifest_hash);
      ("file", Jsonio.Str e.file);
    ]

let index_to_json t =
  Jsonio.Obj
    [
      ("schema_version", Jsonio.Num (float_of_int schema_version));
      ("kind", Jsonio.Str kind_name);
      ("next_seq", Jsonio.Num (float_of_int t.next_seq));
      ("entries_digest", Jsonio.Str (entries_digest t.all));
      ("entries", Jsonio.List (List.map entry_to_json t.all));
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let d_field ctx name json =
  match Jsonio.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx name)

let d_num ctx name json =
  let* v = d_field ctx name json in
  match Jsonio.to_float_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: field %S is not a number" ctx name)

let d_int ctx name json =
  let* f = d_num ctx name json in
  if Float.is_integer f then Ok (int_of_float f)
  else Error (Printf.sprintf "%s: field %S is not an integer" ctx name)

let d_str ctx name json =
  let* v = d_field ctx name json in
  match Jsonio.to_string_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: field %S is not a string" ctx name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let entry_of_json json =
  let ctx = "store entry" in
  let* seq = d_int ctx "seq" json in
  let ctx = Printf.sprintf "store entry %d" seq in
  let* config_digest = d_str ctx "config_digest" json in
  let* source = d_str ctx "source" json in
  let* label = d_str ctx "label" json in
  let* backend =
    match Jsonio.member "backend" json with
    | None -> Error (ctx ^ ": missing field \"backend\"")
    | Some Jsonio.Null -> Ok None
    | Some v -> (
      match Jsonio.to_string_opt v with
      | Some s -> Ok (Some s)
      | None -> Error (ctx ^ ": field \"backend\" is not a string"))
  in
  let* created_unix = d_num ctx "created_unix" json in
  let* manifest_hash = d_str ctx "manifest_hash" json in
  let* file = d_str ctx "file" json in
  if Filename.basename file <> file then
    Error (Printf.sprintf "%s: file %S is not a plain name" ctx file)
  else
    Ok { seq; config_digest; source; label; backend; created_unix;
         manifest_hash; file }

let index_of_json root json =
  let ctx = kind_name in
  let* version = d_int ctx "schema_version" json in
  if version <> schema_version then
    Error
      (Printf.sprintf
         "unsupported store index schema version %d (this build reads \
          version %d)"
         version schema_version)
  else
    let* kind = d_str ctx "kind" json in
    if kind <> kind_name then
      Error (Printf.sprintf "%s: unexpected kind %S" ctx kind)
    else
      let* next_seq = d_int ctx "next_seq" json in
      let* digest = d_str ctx "entries_digest" json in
      let* entries_j = d_field ctx "entries" json in
      let* all =
        match entries_j with
        | Jsonio.List l -> map_result entry_of_json l
        | _ -> Error (ctx ^ ": field \"entries\" is not a list")
      in
      if digest <> entries_digest all then
        Error
          (Printf.sprintf
             "%s: entries digest mismatch (recorded %s, recomputed %s) — \
              the index was modified after it was written"
             ctx digest (entries_digest all))
      else if List.exists (fun e -> e.seq >= next_seq) all then
        Error (ctx ^ ": an entry's seq is not below next_seq")
      else Ok { root; next_seq; all }

(* ------------------------------------------------------------------ *)
(* Open / persist                                                      *)
(* ------------------------------------------------------------------ *)

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      (try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go path

let persist t =
  write_file_atomic (index_path t.root)
    (Jsonio.to_string (index_to_json t) ^ "\n")

let open_store ?(create = false) root =
  let idx = index_path root in
  if Sys.file_exists idx then begin
    match Jsonio.of_string (read_file idx) with
    | Error msg -> Error (Printf.sprintf "%s: not JSON: %s" idx msg)
    | Ok j -> (
      match index_of_json root j with
      | Error msg -> Error (Printf.sprintf "%s: %s" idx msg)
      | Ok t -> Ok t)
  end
  else if create then begin
    try
      mkdir_p (runs_dir root);
      let t = { root; next_seq = 1; all = [] } in
      persist t;
      Ok t
    with Sys_error msg | Unix.Unix_error (_, msg, _) ->
      Error (Printf.sprintf "cannot create store %s: %s" root msg)
  end
  else Error (Printf.sprintf "no run store at %s (no %s)" root idx)

(* ------------------------------------------------------------------ *)
(* Ingest / query / load                                               *)
(* ------------------------------------------------------------------ *)

let manifest_text m = Jsonio.to_string (Manifest.to_json m) ^ "\n"

let ingest t (m : Manifest.t) =
  let text = manifest_text m in
  let hash = Manifest.fnv64_hex text in
  match List.find_opt (fun e -> e.manifest_hash = hash) t.all with
  | Some e -> Ok (Deduped e)
  | None -> (
    let seq = t.next_seq in
    let e =
      {
        seq;
        config_digest = m.Manifest.config_digest;
        source = m.Manifest.source;
        label = m.Manifest.label;
        backend = Manifest.backend m;
        created_unix = m.Manifest.created_unix;
        manifest_hash = hash;
        file = Printf.sprintf "run-%06d-%s.json" seq m.Manifest.config_digest;
      }
    in
    try
      mkdir_p (runs_dir t.root);
      write_file_atomic (run_path t.root e) text;
      t.next_seq <- seq + 1;
      t.all <- t.all @ [ e ];
      persist t;
      Ok (Ingested e)
    with Sys_error msg | Unix.Unix_error (_, msg, _) ->
      Error (Printf.sprintf "cannot write run to store %s: %s" t.root msg))

let query ?config_digest ?source ?label ?backend t =
  let want opt f = match opt with None -> true | Some v -> f = v in
  List.filter
    (fun e ->
      want config_digest e.config_digest
      && want source e.source && want label e.label
      && (match backend with None -> true | Some b -> e.backend = Some b))
    t.all

let load t e =
  let path = run_path t.root e in
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text ->
    let hash = Manifest.fnv64_hex text in
    if hash <> e.manifest_hash then
      Error
        (Printf.sprintf
           "%s: content hash mismatch (indexed %s, recomputed %s) — the \
            stored run was modified after ingestion"
           path e.manifest_hash hash)
    else (
      match Jsonio.of_string text with
      | Error msg -> Error (Printf.sprintf "%s: not JSON: %s" path msg)
      | Ok j -> (
        match Manifest.of_json j with
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
        | Ok m -> Ok m))

let latest_comparable t (m : Manifest.t) =
  let hash = Manifest.fnv64_hex (manifest_text m) in
  query ~config_digest:m.Manifest.config_digest ~source:m.Manifest.source t
  |> List.filter (fun e -> e.manifest_hash <> hash)
  |> List.fold_left (fun _ e -> Some e) None

let find_seq t seq = List.find_opt (fun e -> e.seq = seq) t.all
