module Sink = Sink
module Clock = Clock
module Chrome_trace = Chrome_trace
module Summary = Summary
module Memory = Memory
module Histogram = Histogram
module Gc_sample = Gc_sample
module Recorder = Recorder
module Manifest = Manifest
module Store = Store
module Trend = Trend
module Folded = Folded
module Progress = Progress

type open_span = {
  id : int;
  name : string;
  start_ns : int64;
  mutable rev_attrs : (string * Sink.attr) list;
}

let sinks : Sink.t list ref = ref []
let enabled_flag = ref false
let stack : open_span list ref = ref []
let next_id = ref 1
let counters_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 16

let enabled () = !enabled_flag

let install sink =
  sinks := !sinks @ [ sink ];
  enabled_flag := true

let uninstall sink =
  sinks := List.filter (fun s -> s != sink) !sinks;
  if !sinks = [] then enabled_flag := false

let reset_counters () =
  Hashtbl.reset counters_tbl;
  Hashtbl.reset gauges_tbl

let clear () =
  sinks := [];
  enabled_flag := false;
  stack := [];
  next_id := 1;
  reset_counters ()

let begin_span name =
  if not !enabled_flag then 0
  else begin
    let id = !next_id in
    Stdlib.incr next_id;
    let parent = match !stack with [] -> 0 | s :: _ -> s.id in
    let ts_ns = Clock.now_ns () in
    stack := { id; name; start_ns = ts_ns; rev_attrs = [] } :: !stack;
    List.iter (fun (s : Sink.t) -> s.on_span_start ~id ~parent ~name ~ts_ns) !sinks;
    id
  end

let close_one (s : open_span) =
  let ts_ns = Clock.now_ns () in
  let dur_ns = Int64.sub ts_ns s.start_ns in
  List.iter
    (fun (sink : Sink.t) ->
      sink.on_span_end ~id:s.id ~name:s.name ~ts_ns ~dur_ns
        ~attrs:(List.rev s.rev_attrs))
    !sinks

let end_span id =
  if id <> 0 && List.exists (fun s -> s.id = id) !stack then begin
    (* Close any spans opened after [id] first, so an exception that
       skipped their end_span cannot corrupt the nesting. *)
    let rec pop () =
      match !stack with
      | [] -> ()
      | s :: rest ->
        stack := rest;
        close_one s;
        if s.id <> id then pop ()
    in
    pop ()
  end

let span name f =
  if not !enabled_flag then f ()
  else begin
    let id = begin_span name in
    Fun.protect ~finally:(fun () -> end_span id) f
  end

let set_attr name v =
  match !stack with
  | [] -> ()
  | s :: _ -> s.rev_attrs <- (name, v) :: s.rev_attrs

let attr_str name v = if !enabled_flag then set_attr name (Sink.Str v)
let attr_int name v = if !enabled_flag then set_attr name (Sink.Int v)
let attr_float name v = if !enabled_flag then set_attr name (Sink.Float v)
let attr_bool name v = if !enabled_flag then set_attr name (Sink.Bool v)

let add name delta =
  if !enabled_flag then begin
    let cell =
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
        let c = ref 0.0 in
        Hashtbl.add counters_tbl name c;
        c
    in
    cell := !cell +. delta;
    let total = !cell in
    let ts_ns = Clock.now_ns () in
    List.iter (fun (s : Sink.t) -> s.on_counter ~name ~delta ~total ~ts_ns) !sinks
  end

let incr name = add name 1.0

let gauge name value =
  if !enabled_flag then begin
    (match Hashtbl.find_opt gauges_tbl name with
    | Some c -> c := value
    | None -> Hashtbl.add gauges_tbl name (ref value));
    let ts_ns = Clock.now_ns () in
    List.iter (fun (s : Sink.t) -> s.on_gauge ~name ~value ~ts_ns) !sinks
  end

let counter name =
  match Hashtbl.find_opt counters_tbl name with Some c -> !c | None -> 0.0

let counters () =
  Hashtbl.fold (fun name c acc -> (name, !c) :: acc) counters_tbl []
  |> List.sort compare

(* The collector owns sink installation, so the pairing of "install
   the progress sink" with "subscribe it to the shard tap" lives
   here; teardown runs even when [f] raises, so no heartbeat outlives
   its run. *)
let with_progress p f =
  let s = Progress.sink p in
  Progress.register p;
  install s;
  Fun.protect
    ~finally:(fun () ->
      uninstall s;
      Progress.unregister p)
    f
