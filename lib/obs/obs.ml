module Sink = Sink
module Clock = Clock
module Chrome_trace = Chrome_trace
module Summary = Summary
module Memory = Memory
module Histogram = Histogram
module Gc_sample = Gc_sample
module Recorder = Recorder
module Manifest = Manifest
module Store = Store
module Trend = Trend
module Folded = Folded
module Progress = Progress

type open_span = {
  id : int;
  name : string;
  start_ns : int64;
  mutable rev_attrs : (string * Sink.attr) list;
}

let sinks : Sink.t list ref = ref []
let enabled_flag = ref false
let stack : open_span list ref = ref []
let next_id = ref 1
let counters_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 16

let enabled () = !enabled_flag

(* --- Per-domain capture ---------------------------------------------

   The collector's global state (sinks, span stack, counter tables) is
   owned by the main domain.  Code running on worker domains must not
   touch it; instead a task is wrapped in [with_capture], which
   installs a domain-local buffer recording every span/counter/gauge
   event the task emits.  The caller replays buffers on the main
   domain in task-index order, so sinks observe one deterministic
   sequential stream regardless of how tasks were scheduled.

   Captured span ids are buffer-local (they start at 1 per capture);
   [replay] remaps them to fresh global ids and reparents top-level
   captured spans under the span currently open on the main domain. *)

type captured_event =
  | Cstart of { id : int; parent : int; name : string; ts_ns : int64 }
  | Cend of {
      id : int;
      name : string;
      ts_ns : int64;
      dur_ns : int64;
      attrs : (string * Sink.attr) list;
    }
  | Ccounter of { name : string; delta : float }
  | Cgauge of { name : string; value : float }

type capture = {
  mutable rev_events : captured_event list;
  mutable cap_stack : open_span list;
  mutable cap_next : int;
}

let capture_key : capture option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_capture () = Domain.DLS.get capture_key

let install sink =
  sinks := !sinks @ [ sink ];
  enabled_flag := true

let uninstall sink =
  sinks := List.filter (fun s -> s != sink) !sinks;
  if !sinks = [] then enabled_flag := false

let reset_counters () =
  Hashtbl.reset counters_tbl;
  Hashtbl.reset gauges_tbl

let clear () =
  sinks := [];
  enabled_flag := false;
  stack := [];
  next_id := 1;
  reset_counters ()

let cap_begin_span c name =
  let id = c.cap_next in
  c.cap_next <- id + 1;
  let parent = match c.cap_stack with [] -> 0 | s :: _ -> s.id in
  let ts_ns = Clock.now_ns () in
  c.cap_stack <- { id; name; start_ns = ts_ns; rev_attrs = [] } :: c.cap_stack;
  c.rev_events <- Cstart { id; parent; name; ts_ns } :: c.rev_events;
  id

let begin_span name =
  if not !enabled_flag then 0
  else
    match current_capture () with
    | Some c -> cap_begin_span c name
    | None ->
      let id = !next_id in
      Stdlib.incr next_id;
      let parent = match !stack with [] -> 0 | s :: _ -> s.id in
      let ts_ns = Clock.now_ns () in
      stack := { id; name; start_ns = ts_ns; rev_attrs = [] } :: !stack;
      List.iter
        (fun (s : Sink.t) -> s.on_span_start ~id ~parent ~name ~ts_ns)
        !sinks;
      id

let close_one (s : open_span) =
  let ts_ns = Clock.now_ns () in
  let dur_ns = Int64.sub ts_ns s.start_ns in
  List.iter
    (fun (sink : Sink.t) ->
      sink.on_span_end ~id:s.id ~name:s.name ~ts_ns ~dur_ns
        ~attrs:(List.rev s.rev_attrs))
    !sinks

let cap_close c (s : open_span) =
  let ts_ns = Clock.now_ns () in
  let dur_ns = Int64.sub ts_ns s.start_ns in
  c.rev_events <-
    Cend
      { id = s.id; name = s.name; ts_ns; dur_ns; attrs = List.rev s.rev_attrs }
    :: c.rev_events

let cap_end_span c id =
  if id <> 0 && List.exists (fun s -> s.id = id) c.cap_stack then begin
    let rec pop () =
      match c.cap_stack with
      | [] -> ()
      | s :: rest ->
        c.cap_stack <- rest;
        cap_close c s;
        if s.id <> id then pop ()
    in
    pop ()
  end

let end_span id =
  match current_capture () with
  | Some c -> cap_end_span c id
  | None ->
    if id <> 0 && List.exists (fun s -> s.id = id) !stack then begin
      (* Close any spans opened after [id] first, so an exception that
         skipped their end_span cannot corrupt the nesting. *)
      let rec pop () =
        match !stack with
        | [] -> ()
        | s :: rest ->
          stack := rest;
          close_one s;
          if s.id <> id then pop ()
      in
      pop ()
    end

let span name f =
  if not !enabled_flag then f ()
  else begin
    let id = begin_span name in
    Fun.protect ~finally:(fun () -> end_span id) f
  end

let set_attr name v =
  let st =
    match current_capture () with Some c -> c.cap_stack | None -> !stack
  in
  match st with
  | [] -> ()
  | s :: _ -> s.rev_attrs <- (name, v) :: s.rev_attrs

let attr_str name v = if !enabled_flag then set_attr name (Sink.Str v)
let attr_int name v = if !enabled_flag then set_attr name (Sink.Int v)
let attr_float name v = if !enabled_flag then set_attr name (Sink.Float v)
let attr_bool name v = if !enabled_flag then set_attr name (Sink.Bool v)

let add name delta =
  if !enabled_flag then begin
    match current_capture () with
    | Some c -> c.rev_events <- Ccounter { name; delta } :: c.rev_events
    | None ->
    let cell =
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
        let c = ref 0.0 in
        Hashtbl.add counters_tbl name c;
        c
    in
    cell := !cell +. delta;
    let total = !cell in
    let ts_ns = Clock.now_ns () in
    List.iter (fun (s : Sink.t) -> s.on_counter ~name ~delta ~total ~ts_ns) !sinks
  end

let incr name = add name 1.0

let gauge name value =
  if !enabled_flag then begin
    match current_capture () with
    | Some c -> c.rev_events <- Cgauge { name; value } :: c.rev_events
    | None ->
    (match Hashtbl.find_opt gauges_tbl name with
    | Some c -> c := value
    | None -> Hashtbl.add gauges_tbl name (ref value));
    let ts_ns = Clock.now_ns () in
    List.iter (fun (s : Sink.t) -> s.on_gauge ~name ~value ~ts_ns) !sinks
  end

let counter name =
  match Hashtbl.find_opt counters_tbl name with Some c -> !c | None -> 0.0

let counters () =
  Hashtbl.fold (fun name c acc -> (name, !c) :: acc) counters_tbl []
  |> List.sort compare

let with_capture f =
  if not !enabled_flag then (f (), None)
  else begin
    let c = { rev_events = []; cap_stack = []; cap_next = 1 } in
    let saved = Domain.DLS.get capture_key in
    Domain.DLS.set capture_key (Some c);
    match f () with
    | v ->
      (* Close anything the task left open so replay never dangles. *)
      List.iter (cap_close c) c.cap_stack;
      c.cap_stack <- [];
      Domain.DLS.set capture_key saved;
      (v, Some c)
    | exception e ->
      Domain.DLS.set capture_key saved;
      raise e
  end

let replay c =
  if !enabled_flag then begin
    let id_map = Hashtbl.create 16 in
    let base_parent = match !stack with [] -> 0 | s :: _ -> s.id in
    List.iter
      (function
        | Cstart { id; parent; name; ts_ns } ->
          let gid = !next_id in
          Stdlib.incr next_id;
          Hashtbl.replace id_map id gid;
          let gparent =
            if parent = 0 then base_parent
            else
              match Hashtbl.find_opt id_map parent with
              | Some p -> p
              | None -> base_parent
          in
          List.iter
            (fun (s : Sink.t) ->
              s.on_span_start ~id:gid ~parent:gparent ~name ~ts_ns)
            !sinks
        | Cend { id; name; ts_ns; dur_ns; attrs } ->
          let gid =
            match Hashtbl.find_opt id_map id with Some g -> g | None -> 0
          in
          List.iter
            (fun (s : Sink.t) -> s.on_span_end ~id:gid ~name ~ts_ns ~dur_ns ~attrs)
            !sinks
        | Ccounter { name; delta } -> add name delta
        | Cgauge { name; value } -> gauge name value)
      (List.rev c.rev_events)
  end

(* The collector owns sink installation, so the pairing of "install
   the progress sink" with "subscribe it to the shard tap" lives
   here; teardown runs even when [f] raises, so no heartbeat outlives
   its run. *)
let with_progress p f =
  let s = Progress.sink p in
  Progress.register p;
  install s;
  Fun.protect
    ~finally:(fun () ->
      uninstall s;
      Progress.unregister p)
    f
