(** The pluggable sink interface of the observability layer.

    A sink is a record of callbacks; the collector ({!Obs}) invokes
    them for every span boundary and every counter/gauge update while
    at least one sink is installed.  Sinks never see anything when
    none is installed — the disabled path is a single flag check. *)

type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
      (** Span attributes: small typed values attached to a span while
          it is open and delivered with its end event. *)

type t = {
  on_span_start : id:int -> parent:int -> name:string -> ts_ns:int64 -> unit;
      (** [parent = 0] means a root span. *)
  on_span_end :
    id:int ->
    name:string ->
    ts_ns:int64 ->
    dur_ns:int64 ->
    attrs:(string * attr) list ->
    unit;
      (** Attributes are delivered in the order they were set. *)
  on_counter : name:string -> delta:float -> total:float -> ts_ns:int64 -> unit;
      (** One accumulation step: the increment and the running total. *)
  on_gauge : name:string -> value:float -> ts_ns:int64 -> unit;
      (** A point-in-time level (last write wins). *)
}

val null : t
(** Receives everything, records nothing.  Installing it exercises the
    full instrumentation path with no output — the reference point for
    the "observability is behaviorally inert" guarantee. *)

val attr_to_string : attr -> string
(** Human-readable rendering (no quoting). *)
