(** Chrome-trace-format sink.

    Accumulates trace events in the Trace Event Format's JSON array
    form, one event object per line (B/E duration events for spans,
    C events for counters and gauges), loadable directly in
    [chrome://tracing] or [ui.perfetto.dev].  Timestamps are
    microseconds relative to sink creation, so traces start at 0. *)

type t

val create : unit -> t

val sink : t -> Sink.t

val contents : t -> string
(** The complete JSON document accumulated so far (the array is closed
    on every call; the sink can keep accumulating afterwards). *)

val write_file : t -> string -> unit
(** [write_file t path] writes {!contents} to [path]. *)
