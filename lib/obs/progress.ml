(* The live progress sink: single-line stderr heartbeats at a bounded
   rate, fed entirely from the event stream (span boundaries, counter
   totals) plus out-of-band shard taps.

   The taps exist because shard progress is a *hint*, not telemetry:
   publishing it as a gauge would make it part of every recorded
   manifest and break the byte-identity of manifests captured with
   and without --progress.  note_shard/note_shard_start/note_shard_done
   go straight to the installed progress sinks and nowhere else, and
   are a single list check when none is installed.

   Thread safety: the shard taps are called from worker domains while
   the sink callbacks run on the main domain, so every state mutation
   and every emission happens under one module-level mutex.  The lock
   is cheap (uncontended except at shard boundaries) and is never held
   across anything that can re-enter this module. *)

type t = {
  out : string -> unit;
  min_interval_ns : int64;
  start_ns : int64;
  mutable last_emit_ns : int64;  (* start - interval => first beat is eligible immediately *)
  mutable stack : string list;  (* innermost first *)
  mutable shard : int;  (* 0-based index of the shard underway; -1 none *)
  mutable shards : int;  (* total; 0 when not sharded *)
  mutable jobs : int;  (* announced concurrency; 1 = serial *)
  mutable done_shards : int;  (* shards completed (note_shard_done) *)
  mutable events : float;  (* dataset.events_measured total *)
  span_hists : (string, Histogram.t) Hashtbl.t;  (* completed spans *)
  shard_hist : Histogram.t;  (* whole-shard front durations *)
  mutable emitted : int;
}

let lock = Mutex.create ()
let locked f = Mutex.protect lock f

let default_out line =
  Printf.eprintf "%s\n%!" line

let create ?(out = default_out) ?(min_interval_ns = 200_000_000L) () =
  let now = Clock.now_ns () in
  {
    out;
    min_interval_ns;
    start_ns = now;
    last_emit_ns = Int64.sub now min_interval_ns;
    stack = [];
    shard = -1;
    shards = 0;
    jobs = 1;
    done_shards = 0;
    events = 0.0;
    span_hists = Hashtbl.create 16;
    shard_hist = Histogram.create ();
    emitted = 0;
  }

let actives : t list ref = ref []

let active () = !actives <> []

let note_hist t name dur_ns =
  let h =
    match Hashtbl.find_opt t.span_hists name with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.add t.span_hists name h;
      h
  in
  Histogram.observe h (Int64.to_float dur_ns)

(* ETA.  Preferred source: the histogram of whole-shard durations fed
   by note_shard_done, divided by the announced concurrency — under
   [--jobs N] the remaining shards complete roughly N at a time, so
   serial extrapolation would overshoot by a factor of N.  Fallback
   (nothing measured yet through the tap): the running histograms of
   the per-shard front spans, as before.  Conservative and cheap;
   absent until at least one shard has completed. *)
let eta_ns t =
  if t.shards <= 0 then None
  else if Histogram.count t.shard_hist > 0 then begin
    let per_shard = Histogram.quantile t.shard_hist 0.5 in
    let remaining = max (t.shards - t.done_shards) 0 in
    let effective = max 1 (min t.jobs (max remaining 1)) in
    Some (float_of_int remaining *. per_shard /. float_of_int effective)
  end
  else if t.shard < 0 then None
  else
    let median name =
      match Hashtbl.find_opt t.span_hists name with
      | Some h when Histogram.count h > 0 -> Histogram.quantile h 0.5
      | _ -> Float.nan
    in
    let per_shard = median "shard-collect" +. median "shard-classify" in
    if Float.is_nan per_shard then None
    else
      let remaining = t.shards - t.shard in
      Some
        (float_of_int (max remaining 0) *. per_shard
        /. float_of_int (max 1 t.jobs))

let seconds ns = ns /. 1e9

let line t ~now_ns =
  let buf = Buffer.create 96 in
  Printf.bprintf buf "progress: %.1fs"
    (seconds (Int64.to_float (Int64.sub now_ns t.start_ns)));
  (match t.stack with
  | stage :: _ -> Printf.bprintf buf " stage=%s" stage
  | [] -> ());
  if t.jobs > 1 && t.shards > 0 then
    Printf.bprintf buf " shards %d/%d done jobs=%d" t.done_shards t.shards
      t.jobs
  else if t.shards > 0 && t.shard >= 0 then
    Printf.bprintf buf " shard %d/%d" (min (t.shard + 1) t.shards) t.shards;
  if t.events > 0.0 then Printf.bprintf buf " events=%.0f" t.events;
  (match eta_ns t with
  | Some ns -> Printf.bprintf buf " eta=%.1fs" (seconds ns)
  | None -> ());
  Buffer.contents buf

(* Caller holds [lock]. *)
let maybe_emit t =
  let now = Clock.now_ns () in
  if Int64.compare (Int64.sub now t.last_emit_ns) t.min_interval_ns >= 0 then begin
    t.last_emit_ns <- now;
    t.emitted <- t.emitted + 1;
    t.out (line t ~now_ns:now)
  end

let sink t =
  {
    Sink.on_span_start =
      (fun ~id:_ ~parent:_ ~name ~ts_ns:_ ->
        locked (fun () ->
            t.stack <- name :: t.stack;
            maybe_emit t));
    on_span_end =
      (fun ~id:_ ~name ~ts_ns:_ ~dur_ns ~attrs:_ ->
        locked (fun () ->
            (match t.stack with [] -> () | _ :: rest -> t.stack <- rest);
            note_hist t name dur_ns;
            maybe_emit t));
    on_counter =
      (fun ~name ~delta:_ ~total ~ts_ns:_ ->
        locked (fun () ->
            if name = "dataset.events_measured" then t.events <- total;
            maybe_emit t));
    on_gauge = (fun ~name:_ ~value:_ ~ts_ns:_ -> ());
  }

(* Registration only covers the out-of-band taps; installing the sink
   into the collector is the caller's move (Obs.with_progress pairs
   the two, since the collector lives above this module). *)
let register t =
  locked (fun () ->
      if not (List.memq t !actives) then actives := t :: !actives)

let unregister t =
  locked (fun () -> actives := List.filter (fun x -> x != t) !actives)

let note_shard ~index ~total =
  locked (fun () ->
      List.iter
        (fun t ->
          t.shard <- index;
          t.shards <- total;
          maybe_emit t)
        !actives)

let note_front ~total ~jobs =
  locked (fun () ->
      List.iter
        (fun t ->
          t.shards <- total;
          t.jobs <- max 1 jobs;
          t.done_shards <- 0;
          maybe_emit t)
        !actives)

let note_shard_start ~index ~total =
  locked (fun () ->
      List.iter
        (fun t ->
          t.shards <- total;
          if index > t.shard then t.shard <- index;
          maybe_emit t)
        !actives)

let note_shard_done ~total ~dur_ns =
  locked (fun () ->
      List.iter
        (fun t ->
          t.shards <- total;
          t.done_shards <- t.done_shards + 1;
          Histogram.observe t.shard_hist (Int64.to_float dur_ns);
          maybe_emit t)
        !actives)

let lines t = locked (fun () -> t.emitted)
