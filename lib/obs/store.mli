(** On-disk, content-addressed run store.

    A store is a directory ([.analyze/store] by default) holding one
    JSON manifest file per ingested run under [runs/], plus a strict,
    schema-versioned [index.json] keyed by [(config_digest, seq)]
    where [seq] is a store-wide monotonic run sequence.  Ingestion is
    content-addressed: the FNV-1a hash of the manifest's canonical
    JSON is the run's identity, so re-ingesting the same manifest is a
    dedupe, not a new run — while two real runs of the same config
    (different timings, different timestamps) append as distinct
    trajectory points.

    Tamper evidence mirrors the manifest's own config digest: the
    index records each run's content hash (verified on {!load}) and an
    entries digest over the whole table (verified on {!open_store}),
    so editing a stored manifest or the index by hand is rejected with
    an error naming the file. *)

val schema_version : int
val default_dir : string
(** [".analyze/store"]. *)

type entry = {
  seq : int;  (** Monotonic, store-wide, 1-based. *)
  config_digest : string;
  source : string;  (** Manifest source ("pipeline", "bench:*", ...). *)
  label : string;  (** Category or bench label. *)
  backend : string option;  (** Config [backend] key, when recorded. *)
  created_unix : float;
  manifest_hash : string;  (** FNV-1a 64 of the stored JSON text. *)
  file : string;  (** File name under [runs/]. *)
}

type t

type outcome =
  | Ingested of entry  (** A new trajectory point. *)
  | Deduped of entry  (** Identical content already stored (the
                          returned entry is the existing one). *)

val open_store : ?create:bool -> string -> (t, string) result
(** Open (and with [create], initialize) a store directory.  A
    missing store with [create:false], a malformed index, a foreign
    schema version and an entries-digest mismatch are all errors
    naming the problem. *)

val dir : t -> string

val entries : t -> entry list
(** All runs, ascending by [seq]. *)

val ingest : t -> Manifest.t -> (outcome, string) result
(** Add one manifest: serialize canonically, hash, dedupe against the
    index, else write [runs/<file>] and rewrite the index atomically
    (temp file + rename). *)

val query :
  ?config_digest:string ->
  ?source:string ->
  ?label:string ->
  ?backend:string ->
  t ->
  entry list
(** Entries matching every given filter, ascending by [seq]. *)

val load : t -> entry -> (Manifest.t, string) result
(** Read a stored run back through the strict manifest decoder,
    verifying the indexed content hash first — a stored file that was
    edited after ingestion is rejected. *)

val latest_comparable : t -> Manifest.t -> entry option
(** The newest stored run with the same config digest and source as
    [m] but different content — the automatic baseline for
    [analyze report --baseline store] (a just-ingested copy of [m]
    itself never shadows the previous run). *)

val find_seq : t -> int -> entry option
