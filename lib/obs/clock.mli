(** Monotonic nanosecond clock for span timing.

    The default source is wall time ([Unix.gettimeofday]) rescaled to
    nanoseconds; readings are clamped so the clock never goes
    backwards within a process, which gives every span a non-negative
    duration even across NTP adjustments.  Tests install a
    deterministic source with {!set_source}. *)

val now_ns : unit -> int64
(** Current reading, monotonically non-decreasing. *)

val set_source : (unit -> int64) -> unit
(** Replace the raw time source (tests: a counter).  The monotonic
    clamp restarts from zero so the new source is never pinned below
    the old one's last reading. *)

val default_source : unit -> int64
(** The wall-clock source, for restoring after a test. *)
