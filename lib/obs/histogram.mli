(** Fixed-bucket latency histogram.

    Log2-spaced upper bounds, fixed for every histogram in the
    process ({!bucket_bounds}: [1024 * 2^i] ns for [i] in 0..25, plus
    an overflow bucket), so histograms from different runs — or
    different machines — are comparable and mergeable bucket by
    bucket.  Quantiles are estimated by linear interpolation inside
    the containing bucket, clamped to the recorded min/max. *)

val bucket_bounds : float array
(** Upper bounds (ns), ascending.  Values above the last bound land
    in the overflow bucket. *)

val bucket_count : int
(** [Array.length bucket_bounds + 1] (the overflow bucket). *)

val scheme_id : string
(** Stable identifier of the bucket geometry, stored in serialized
    manifests so a reader can reject histograms recorded under a
    different scheme. *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Record one duration in nanoseconds.  Negative and NaN inputs
    count in the first bucket as 0. *)

val count : t -> int
val sum_ns : t -> float

val min_ns : t -> float
(** [infinity] when empty. *)

val max_ns : t -> float
(** [neg_infinity] when empty. *)

val counts : t -> int array
(** A copy of the bucket counts ({!bucket_count} cells). *)

val of_counts :
  counts:int array -> n:int -> sum_ns:float -> min_ns:float ->
  max_ns:float -> t
(** Rebuild from serialized state; raises [Invalid_argument] if the
    bucket count does not match {!bucket_count}. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] clamped to [0,1]; NaN when empty.  The
    estimate is exact for single-valued distributions and within one
    bucket's width otherwise. *)

val merge : t -> t -> t
(** Bucket-wise sum (same fixed scheme on both sides). *)
