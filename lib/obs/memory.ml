type event =
  | Span_start of { id : int; parent : int; name : string; ts_ns : int64 }
  | Span_end of {
      id : int;
      name : string;
      ts_ns : int64;
      dur_ns : int64;
      attrs : (string * Sink.attr) list;
    }
  | Counter of { name : string; delta : float; total : float; ts_ns : int64 }
  | Gauge of { name : string; value : float; ts_ns : int64 }

type t = { mutable rev_events : event list }

let create () = { rev_events = [] }

let record t e = t.rev_events <- e :: t.rev_events

let sink t =
  {
    Sink.on_span_start =
      (fun ~id ~parent ~name ~ts_ns -> record t (Span_start { id; parent; name; ts_ns }));
    on_span_end =
      (fun ~id ~name ~ts_ns ~dur_ns ~attrs ->
        record t (Span_end { id; name; ts_ns; dur_ns; attrs }));
    on_counter =
      (fun ~name ~delta ~total ~ts_ns -> record t (Counter { name; delta; total; ts_ns }));
    on_gauge = (fun ~name ~value ~ts_ns -> record t (Gauge { name; value; ts_ns }));
  }

let events t = List.rev t.rev_events

let span_ends ?name t =
  List.filter
    (function
      | Span_end e -> (match name with None -> true | Some n -> e.name = n)
      | _ -> false)
    (events t)
