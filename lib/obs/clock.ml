let default_source () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let source = ref default_source
let last = ref 0L

(* Swapping the source restarts the clamp: a deterministic test
   source must not be pinned below the last wall-clock reading. *)
let set_source f =
  source := f;
  last := 0L

let now_ns () =
  let t = !source () in
  let t = if t < !last then !last else t in
  last := t;
  t
