(** Live progress heartbeats: a rate-bounded, single-line-per-beat
    stderr sink for watching a long run execute.

    Each heartbeat is one line —

    {v progress: 2.1s stage=shard-classify shard 3/8 events=512 eta=1.4s v}

    — carrying the innermost open span (the current stage), shard
    progress when the staged pipeline has announced it
    ({!note_shard}), the events-processed counter, and an ETA
    interpolated from the running histogram of completed shard-stage
    spans (median per-shard cost times remaining shards).  Emission is
    bounded: at most one line per [min_interval_ns] (default 200 ms),
    no matter how many events arrive.

    Like every sink, the progress path costs nothing when not
    installed; installed, it only reads the event stream and writes
    lines through [out], so pipeline outputs are bit-identical with
    and without it (pinned by test).  {!note_shard} is the one
    out-of-band tap: it is a no-op unless a progress sink is
    installed, so the staged pipeline can announce shard boundaries
    without polluting recorded gauges (and therefore manifests). *)

type t

val create :
  ?out:(string -> unit) ->
  ?min_interval_ns:int64 ->
  unit ->
  t
(** [out] receives each complete heartbeat line (no trailing newline);
    the default writes ["line\n"] to stderr and flushes. *)

val sink : t -> Sink.t

val register : t -> unit
(** Subscribe to {!note_shard}.  Installing the sink into the
    collector is separate ({!Obs.with_progress} does both). *)

val unregister : t -> unit

val active : unit -> bool
(** True iff at least one progress sink is installed — the guard the
    staged pipeline's shard taps check. *)

val note_shard : index:int -> total:int -> unit
(** Announce that shard [index] (0-based) of [total] is about to run.
    No-op when {!active} is false. *)

val lines : t -> int
(** Heartbeats emitted so far (for the rate-bound tests). *)
