(** Live progress heartbeats: a rate-bounded, single-line-per-beat
    stderr sink for watching a long run execute.

    Each heartbeat is one line —

    {v progress: 2.1s stage=shard-classify shard 3/8 events=512 eta=1.4s v}

    — carrying the innermost open span (the current stage), shard
    progress when the staged pipeline has announced it
    ({!note_shard}), the events-processed counter, and an ETA
    interpolated from the running histogram of completed shard-stage
    spans (median per-shard cost times remaining shards).  Emission is
    bounded: at most one line per [min_interval_ns] (default 200 ms),
    no matter how many events arrive.

    Like every sink, the progress path costs nothing when not
    installed; installed, it only reads the event stream and writes
    lines through [out], so pipeline outputs are bit-identical with
    and without it (pinned by test).  {!note_shard},
    {!note_shard_start} and {!note_shard_done} are the out-of-band
    taps: no-ops unless a progress sink is installed, so the staged
    pipeline can announce shard boundaries without polluting recorded
    gauges (and therefore manifests).

    Thread safety: all taps and sink callbacks are serialized behind
    one internal mutex, so they may be called from worker domains (the
    parallel shard front calls {!note_shard_start}/{!note_shard_done}
    from inside tasks).  Under [--jobs N] the ETA divides the median
    per-shard duration by the announced concurrency instead of
    assuming serial completion. *)

type t

val create :
  ?out:(string -> unit) ->
  ?min_interval_ns:int64 ->
  unit ->
  t
(** [out] receives each complete heartbeat line (no trailing newline);
    the default writes ["line\n"] to stderr and flushes. *)

val sink : t -> Sink.t

val register : t -> unit
(** Subscribe to {!note_shard}.  Installing the sink into the
    collector is separate ({!Obs.with_progress} does both). *)

val unregister : t -> unit

val active : unit -> bool
(** True iff at least one progress sink is installed — the guard the
    staged pipeline's shard taps check. *)

val note_shard : index:int -> total:int -> unit
(** Announce that shard [index] (0-based) of [total] is about to run.
    No-op when {!active} is false. *)

val note_front : total:int -> jobs:int -> unit
(** Announce the start of a sharded front: [total] shards to run with
    [jobs]-way concurrency.  Resets the done count. *)

val note_shard_start : index:int -> total:int -> unit
(** A shard began executing (worker-domain safe). *)

val note_shard_done : total:int -> dur_ns:int64 -> unit
(** A shard finished after [dur_ns] (worker-domain safe); feeds the
    completion count and the per-shard duration histogram the
    concurrent ETA is computed from. *)

val lines : t -> int
(** Heartbeats emitted so far (for the rate-bound tests). *)
