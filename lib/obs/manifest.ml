(* The run manifest: a schema-versioned, durable telemetry artifact
   describing one pipeline or benchmark run — config digest, per-span
   timing aggregates with fixed-bucket latency histograms and GC
   deltas, counters, gauges, stage totals, bench metrics, the
   pre-flight lint summary and content hashes of the run's shard and
   ledger artifacts.

   Everything that is nondeterministic between two identical runs
   (durations, histogram shapes, quantiles, GC words, creation time)
   is classified as "timing" by [diff]; everything else — config,
   counters, span counts, totals, lint, artifact hashes — must be
   bit-equal for identical configs, which is what
   [analyze report --diff] enforces. *)

let schema_version = 1
let kind_name = "run-manifest"

type lint_summary = { errors : int; warns : int; infos : int }

type span_stat = {
  span : string;
  count : int;
  total_ns : float;
  min_ns : float;
  max_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  buckets : int array;  (* Histogram.bucket_count cells *)
  gc_minor_words : float;
  gc_major_words : float;
  gc_promoted_words : float;
  gc_compactions : int;
}

type t = {
  version : int;
  source : string;  (* "pipeline", "bench:linalg-scale", ... *)
  label : string;  (* category name or bench label *)
  created_unix : float;
  config : (string * string) list;  (* canonical, sorted by key *)
  config_digest : string;
  spans : span_stat list;  (* sorted by span name *)
  counters : (string * float) list;
  gauges : (string * float) list;
  totals : (string * float) list;  (* ledger fate totals *)
  metrics : (string * float) list;  (* bench measurements (ms) *)
  gc : (string * float) list;  (* whole-run GC stats *)
  lint : lint_summary option;
  artifacts : (string * string) list;  (* name -> content hash *)
}

(* ------------------------------------------------------------------ *)
(* Content hashing (FNV-1a 64)                                         *)
(* ------------------------------------------------------------------ *)

let fnv64_hex s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  Printf.sprintf "%016Lx" !h

let digest_config pairs =
  let canonical =
    List.sort compare pairs
    |> List.map (fun (k, v) -> k ^ "=" ^ v ^ "\n")
    |> String.concat ""
  in
  fnv64_hex canonical

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let span_stat_of_agg span (a : Recorder.span_agg) =
  let g = a.Recorder.gc in
  {
    span;
    count = a.Recorder.count;
    total_ns = a.Recorder.total_ns;
    min_ns = a.Recorder.min_ns;
    max_ns = a.Recorder.max_ns;
    p50_ns = Histogram.quantile a.Recorder.hist 0.5;
    p90_ns = Histogram.quantile a.Recorder.hist 0.9;
    p99_ns = Histogram.quantile a.Recorder.hist 0.99;
    buckets = Histogram.counts a.Recorder.hist;
    gc_minor_words = g.Gc_sample.minor_words;
    gc_major_words = g.Gc_sample.major_words;
    gc_promoted_words = g.Gc_sample.promoted_words;
    gc_compactions = g.Gc_sample.compactions;
  }

let of_recorder ~source ~label ?(config = []) ?(totals = []) ?(metrics = [])
    ?(gc = []) ?lint ?(artifacts = []) recorder =
  let config = List.sort compare config in
  {
    version = schema_version;
    source;
    label;
    created_unix = Unix.gettimeofday ();
    config;
    config_digest = digest_config config;
    spans =
      List.map (fun (name, a) -> span_stat_of_agg name a) (Recorder.spans recorder);
    counters = Recorder.counters recorder;
    gauges = Recorder.gauges recorder;
    totals = List.sort compare totals;
    metrics = List.sort compare metrics;
    gc = List.sort compare gc;
    lint;
    artifacts = List.sort compare artifacts;
  }

(* NaN-tolerant structural equality ([compare] orders NaN = NaN,
   which polymorphic [=] on floats does not). *)
let equal a b = compare a b = 0

let find_metric t name = List.assoc_opt name t.metrics
let find_counter t name = List.assoc_opt name t.counters

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let float_table pairs =
  Jsonio.Obj (List.map (fun (k, v) -> (k, Jsonio.fnum v)) pairs)

let string_table pairs =
  Jsonio.Obj (List.map (fun (k, v) -> (k, Jsonio.Str v)) pairs)

let span_to_json (s : span_stat) =
  Jsonio.Obj
    [
      ("span", Jsonio.Str s.span);
      ("count", Jsonio.Num (float_of_int s.count));
      ("total_ns", Jsonio.fnum s.total_ns);
      ("min_ns", Jsonio.fnum s.min_ns);
      ("max_ns", Jsonio.fnum s.max_ns);
      ("p50_ns", Jsonio.fnum s.p50_ns);
      ("p90_ns", Jsonio.fnum s.p90_ns);
      ("p99_ns", Jsonio.fnum s.p99_ns);
      ( "buckets",
        Jsonio.List
          (Array.to_list
             (Array.map (fun c -> Jsonio.Num (float_of_int c)) s.buckets)) );
      ("gc_minor_words", Jsonio.fnum s.gc_minor_words);
      ("gc_major_words", Jsonio.fnum s.gc_major_words);
      ("gc_promoted_words", Jsonio.fnum s.gc_promoted_words);
      ("gc_compactions", Jsonio.Num (float_of_int s.gc_compactions));
    ]

let to_json m =
  Jsonio.Obj
    [
      ("schema_version", Jsonio.Num (float_of_int m.version));
      ("kind", Jsonio.Str kind_name);
      ("source", Jsonio.Str m.source);
      ("label", Jsonio.Str m.label);
      ("created_unix", Jsonio.Num m.created_unix);
      ("histogram_scheme", Jsonio.Str Histogram.scheme_id);
      ("config", string_table m.config);
      ("config_digest", Jsonio.Str m.config_digest);
      ("spans", Jsonio.List (List.map span_to_json m.spans));
      ("counters", float_table m.counters);
      ("gauges", float_table m.gauges);
      ("totals", float_table m.totals);
      ("metrics", float_table m.metrics);
      ("gc", float_table m.gc);
      ( "lint",
        match m.lint with
        | None -> Jsonio.Null
        | Some l ->
          Jsonio.Obj
            [
              ("errors", Jsonio.Num (float_of_int l.errors));
              ("warns", Jsonio.Num (float_of_int l.warns));
              ("infos", Jsonio.Num (float_of_int l.infos));
            ] );
      ("artifacts", string_table m.artifacts);
    ]

(* Strict decode: a missing or mistyped field is an error naming the
   field; unknown schema versions, foreign histogram schemes and a
   config section that no longer matches its digest all fail loudly
   (the digest check is the tamper detector). *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let d_field ctx name json =
  match Jsonio.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx name)

let d_float ctx name json =
  let* v = d_field ctx name json in
  match Jsonio.fnum_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: field %S is not a number" ctx name)

let d_int ctx name json =
  let* f = d_float ctx name json in
  if Float.is_integer f then Ok (int_of_float f)
  else Error (Printf.sprintf "%s: field %S is not an integer" ctx name)

let d_str ctx name json =
  let* v = d_field ctx name json in
  match Jsonio.to_string_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: field %S is not a string" ctx name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let d_float_table ctx name json =
  let* v = d_field ctx name json in
  match v with
  | Jsonio.Obj fields ->
    map_result
      (fun (k, fv) ->
        match Jsonio.fnum_opt fv with
        | Some f -> Ok (k, f)
        | None ->
          Error (Printf.sprintf "%s: %s.%s is not a number" ctx name k))
      fields
  | _ -> Error (Printf.sprintf "%s: field %S is not an object" ctx name)

let d_string_table ctx name json =
  let* v = d_field ctx name json in
  match v with
  | Jsonio.Obj fields ->
    map_result
      (fun (k, fv) ->
        match Jsonio.to_string_opt fv with
        | Some s -> Ok (k, s)
        | None ->
          Error (Printf.sprintf "%s: %s.%s is not a string" ctx name k))
      fields
  | _ -> Error (Printf.sprintf "%s: field %S is not an object" ctx name)

let span_of_json json =
  let* span = d_str "manifest span" "span" json in
  let ctx = "span " ^ span in
  let* count = d_int ctx "count" json in
  let* total_ns = d_float ctx "total_ns" json in
  let* min_ns = d_float ctx "min_ns" json in
  let* max_ns = d_float ctx "max_ns" json in
  let* p50_ns = d_float ctx "p50_ns" json in
  let* p90_ns = d_float ctx "p90_ns" json in
  let* p99_ns = d_float ctx "p99_ns" json in
  let* buckets_j = d_field ctx "buckets" json in
  let* buckets =
    match buckets_j with
    | Jsonio.List l ->
      let* counts =
        map_result
          (fun v ->
            match Jsonio.fnum_opt v with
            | Some f when Float.is_integer f -> Ok (int_of_float f)
            | _ -> Error (ctx ^ ": bucket count is not an integer"))
          l
      in
      let arr = Array.of_list counts in
      if Array.length arr <> Histogram.bucket_count then
        Error
          (Printf.sprintf "%s: %d buckets (scheme %s has %d)" ctx
             (Array.length arr) Histogram.scheme_id Histogram.bucket_count)
      else Ok arr
    | _ -> Error (ctx ^ ": field \"buckets\" is not a list")
  in
  let* gc_minor_words = d_float ctx "gc_minor_words" json in
  let* gc_major_words = d_float ctx "gc_major_words" json in
  let* gc_promoted_words = d_float ctx "gc_promoted_words" json in
  let* gc_compactions = d_int ctx "gc_compactions" json in
  Ok
    {
      span;
      count;
      total_ns;
      min_ns;
      max_ns;
      p50_ns;
      p90_ns;
      p99_ns;
      buckets;
      gc_minor_words;
      gc_major_words;
      gc_promoted_words;
      gc_compactions;
    }

let of_json json =
  let ctx = kind_name in
  let* version = d_int ctx "schema_version" json in
  if version <> schema_version then
    Error
      (Printf.sprintf
         "unsupported manifest schema version %d (this build reads version %d)"
         version schema_version)
  else
    let* kind = d_str ctx "kind" json in
    if kind <> kind_name then
      Error (Printf.sprintf "%s: unexpected kind %S" ctx kind)
    else
      let* scheme = d_str ctx "histogram_scheme" json in
      if scheme <> Histogram.scheme_id then
        Error
          (Printf.sprintf
             "%s: histogram scheme %S (this build records %S)" ctx scheme
             Histogram.scheme_id)
      else
        let* source = d_str ctx "source" json in
        let* label = d_str ctx "label" json in
        let* created_unix = d_float ctx "created_unix" json in
        let* config = d_string_table ctx "config" json in
        let* config_digest = d_str ctx "config_digest" json in
        if config_digest <> digest_config config then
          Error
            (Printf.sprintf
               "%s: config digest mismatch (recorded %s, recomputed %s) — \
                the config section was modified after the manifest was \
                written"
               ctx config_digest (digest_config config))
        else
          let* spans_j = d_field ctx "spans" json in
          let* spans =
            match spans_j with
            | Jsonio.List l -> map_result span_of_json l
            | _ -> Error (ctx ^ ": field \"spans\" is not a list")
          in
          let* counters = d_float_table ctx "counters" json in
          let* gauges = d_float_table ctx "gauges" json in
          let* totals = d_float_table ctx "totals" json in
          let* metrics = d_float_table ctx "metrics" json in
          let* gc = d_float_table ctx "gc" json in
          let* lint =
            match Jsonio.member "lint" json with
            | None -> Error (ctx ^ ": missing field \"lint\"")
            | Some Jsonio.Null -> Ok None
            | Some l ->
              let* errors = d_int "lint" "errors" l in
              let* warns = d_int "lint" "warns" l in
              let* infos = d_int "lint" "infos" l in
              Ok (Some { errors; warns; infos })
          in
          let* artifacts = d_string_table ctx "artifacts" json in
          Ok
            {
              version;
              source;
              label;
              created_unix;
              config;
              config_digest;
              spans;
              counters;
              gauges;
              totals;
              metrics;
              gc;
              lint;
              artifacts;
            }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let ms ns = ns /. 1e6

let render m =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "run manifest: %s (%s), schema v%d\n" m.label m.source
    m.version;
  Printf.bprintf buf "config digest %s\n" m.config_digest;
  List.iter (fun (k, v) -> Printf.bprintf buf "  %-20s %s\n" k v) m.config;
  (match m.lint with
  | None -> ()
  | Some l ->
    Printf.bprintf buf "lint: %d error(s), %d warning(s), %d info\n" l.errors
      l.warns l.infos);
  if m.spans <> [] then begin
    Printf.bprintf buf "%-24s %6s %10s %10s %10s %10s %10s\n" "span" "count"
      "total ms" "p50 ms" "p90 ms" "p99 ms" "max ms";
    List.iter
      (fun s ->
        Printf.bprintf buf "%-24s %6d %10.3f %10.3f %10.3f %10.3f %10.3f\n"
          s.span s.count (ms s.total_ns) (ms s.p50_ns) (ms s.p90_ns)
          (ms s.p99_ns) (ms s.max_ns))
      m.spans
  end;
  let table title pairs fmt =
    if pairs <> [] then begin
      Printf.bprintf buf "%s\n" title;
      List.iter (fun (k, v) -> Printf.bprintf buf "  %-34s %s\n" k (fmt v)) pairs
    end
  in
  let g v = Printf.sprintf "%.6g" v in
  table "totals:" m.totals g;
  table "counters:" m.counters g;
  table "gauges:" m.gauges g;
  table "metrics:" m.metrics g;
  table "gc:" m.gc g;
  table "artifacts:" m.artifacts (fun s -> s);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

type change = {
  path : string;
  timing : bool;  (* expected to differ between identical runs *)
  before : string;
  after : string;
}

let non_timing changes = List.filter (fun c -> not c.timing) changes
let timing_only changes = List.filter (fun c -> c.timing) changes

let backend t = List.assoc_opt "backend" t.config

let cross_backend a b =
  match (backend a, backend b) with
  | Some ba, Some bb when ba <> bb -> Some (ba, bb)
  | _ -> None

let jobs t = List.assoc_opt "jobs" t.config

let cross_jobs a b =
  match (jobs a, jobs b) with
  | Some ja, Some jb when ja <> jb -> Some (ja, jb)
  | _ -> None

let diff a b =
  let changes = ref [] in
  let push ~timing path before after =
    changes := { path; timing; before; after } :: !changes
  in
  let fstr v = Printf.sprintf "%.6g" v in
  let scalar ~timing path av bv =
    if av <> bv then push ~timing path av bv
  in
  (* Key-aligned association-list comparison; [absent] marks keys
     present on only one side (always a non-timing difference for
     value tables: the *set* of recorded names is deterministic). *)
  let assoc_diff ~timing ~section ~fmt ~eq al bl =
    let keys =
      List.sort_uniq compare (List.map fst al @ List.map fst bl)
    in
    List.iter
      (fun k ->
        let path = section ^ "." ^ k in
        match (List.assoc_opt k al, List.assoc_opt k bl) with
        | None, None -> ()
        | Some v, None -> push ~timing:false path (fmt v) "(absent)"
        | None, Some v -> push ~timing:false path "(absent)" (fmt v)
        | Some va, Some vb -> if not (eq va vb) then push ~timing path (fmt va) (fmt vb))
      keys
  in
  let feq = Float.equal in
  scalar ~timing:false "source" a.source b.source;
  scalar ~timing:false "label" a.label b.label;
  assoc_diff ~timing:false ~section:"config" ~fmt:Fun.id ~eq:String.equal
    a.config b.config;
  scalar ~timing:false "config_digest" a.config_digest b.config_digest;
  assoc_diff ~timing:false ~section:"counters" ~fmt:fstr ~eq:feq a.counters
    b.counters;
  assoc_diff ~timing:false ~section:"gauges" ~fmt:fstr ~eq:feq a.gauges
    b.gauges;
  assoc_diff ~timing:false ~section:"totals" ~fmt:fstr ~eq:feq a.totals
    b.totals;
  assoc_diff ~timing:false ~section:"artifacts" ~fmt:Fun.id ~eq:String.equal
    a.artifacts b.artifacts;
  (match (a.lint, b.lint) with
  | None, None -> ()
  | Some l, None ->
    push ~timing:false "lint"
      (Printf.sprintf "%d/%d/%d" l.errors l.warns l.infos)
      "(absent)"
  | None, Some l ->
    push ~timing:false "lint" "(absent)"
      (Printf.sprintf "%d/%d/%d" l.errors l.warns l.infos)
  | Some la, Some lb ->
    if la <> lb then
      push ~timing:false "lint"
        (Printf.sprintf "%d/%d/%d" la.errors la.warns la.infos)
        (Printf.sprintf "%d/%d/%d" lb.errors lb.warns lb.infos));
  (* Metrics are measurements: a changed value is a timing delta, but
     a metric present on only one side is a schema-level difference. *)
  assoc_diff ~timing:true ~section:"metrics" ~fmt:fstr ~eq:feq a.metrics
    b.metrics;
  assoc_diff ~timing:true ~section:"gc" ~fmt:fstr ~eq:feq a.gc b.gc;
  (* Spans: the set of span names and each count are deterministic;
     every duration/quantile/histogram/GC field is timing. *)
  let span_names =
    List.sort_uniq compare
      (List.map (fun s -> s.span) a.spans @ List.map (fun s -> s.span) b.spans)
  in
  List.iter
    (fun name ->
      let find l = List.find_opt (fun s -> s.span = name) l in
      match (find a.spans, find b.spans) with
      | None, None -> ()
      | Some _, None -> push ~timing:false ("span." ^ name) "recorded" "(absent)"
      | None, Some _ -> push ~timing:false ("span." ^ name) "(absent)" "recorded"
      | Some sa, Some sb ->
        if sa.count <> sb.count then
          push ~timing:false
            ("span." ^ name ^ ".count")
            (string_of_int sa.count) (string_of_int sb.count);
        let t field va vb =
          if not (Float.equal va vb) then
            push ~timing:true
              ("span." ^ name ^ "." ^ field)
              (Printf.sprintf "%.3f ms" (ms va))
              (Printf.sprintf "%.3f ms" (ms vb))
        in
        t "total_ns" sa.total_ns sb.total_ns;
        t "p50_ns" sa.p50_ns sb.p50_ns;
        t "p99_ns" sa.p99_ns sb.p99_ns;
        if sa.buckets <> sb.buckets then
          push ~timing:true
            ("span." ^ name ^ ".histogram")
            "bucket counts" "differ";
        if
          not
            (Float.equal sa.gc_minor_words sb.gc_minor_words
            && Float.equal sa.gc_major_words sb.gc_major_words
            && sa.gc_compactions = sb.gc_compactions)
        then
          push ~timing:true ("span." ^ name ^ ".gc") "gc deltas" "differ")
    span_names;
  List.rev !changes

let render_changes ?(show_timing = true) changes =
  let buf = Buffer.create 1024 in
  let nt = non_timing changes and t = timing_only changes in
  Printf.bprintf buf "%d non-timing difference(s), %d timing delta(s)\n"
    (List.length nt) (List.length t);
  let section title items =
    if items <> [] then begin
      Printf.bprintf buf "%s\n" title;
      List.iter
        (fun c ->
          Printf.bprintf buf "  %-40s %s -> %s\n" c.path c.before c.after)
        items
    end
  in
  section "non-timing differences:" nt;
  if show_timing then section "timing deltas:" t
  else if t <> [] then
    Printf.bprintf buf "(timing deltas suppressed; pass --timing to list)\n";
  Buffer.contents buf
