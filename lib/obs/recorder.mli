(** The manifest-feeding sink: structured per-span-name timing
    aggregates (count/total/min/max, fixed-bucket duration
    {!Histogram}, accumulated {!Gc_sample} deltas), counter deltas
    and gauges — what {!Manifest.of_recorder} snapshots. *)

type span_agg = {
  mutable count : int;
  mutable total_ns : float;
  mutable min_ns : float;
  mutable max_ns : float;
  hist : Histogram.t;
  mutable gc : Gc_sample.t;
}

type t

val create : unit -> t

val sink : t -> Sink.t

val spans : t -> (string * span_agg) list
(** Sorted by span name. *)

val counters : t -> (string * float) list
(** Counter deltas seen by this sink, sorted by name. *)

val gauges : t -> (string * float) list
(** Last-write-wins gauge levels, sorted by name. *)
