(** In-memory recording sink, primarily for tests.

    Records every event verbatim, in arrival order, so assertions can
    inspect nesting, timestamps and attributes without parsing any
    rendered output. *)

type event =
  | Span_start of { id : int; parent : int; name : string; ts_ns : int64 }
  | Span_end of {
      id : int;
      name : string;
      ts_ns : int64;
      dur_ns : int64;
      attrs : (string * Sink.attr) list;
    }
  | Counter of { name : string; delta : float; total : float; ts_ns : int64 }
  | Gauge of { name : string; value : float; ts_ns : int64 }

type t

val create : unit -> t

val sink : t -> Sink.t

val events : t -> event list
(** In arrival order. *)

val span_ends : ?name:string -> t -> event list
(** The [Span_end] events (optionally only those with [name]), in
    completion order. *)
