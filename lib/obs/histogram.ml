(* Fixed-bucket latency histogram.

   Buckets are log2-spaced upper bounds in nanoseconds, fixed for
   every histogram in the process: bounds.(i) = 1024 * 2^i ns, i in
   0..25 (1.024 us up to ~34.4 s), plus one overflow bucket.  Fixed
   geometry is the point: two histograms recorded by different runs
   (or different machines) are directly comparable and mergeable
   bucket by bucket, which is what the run-manifest diff needs. *)

let bucket_bounds =
  Array.init 26 (fun i -> 1024.0 *. (2.0 ** float_of_int i))

let bucket_count = Array.length bucket_bounds + 1

let scheme_id = Printf.sprintf "log2-1024ns-%d" (Array.length bucket_bounds)

type t = {
  counts : int array;  (* bucket_count cells; last is overflow *)
  mutable n : int;
  mutable sum_ns : float;
  mutable min_ns : float;
  mutable max_ns : float;
}

let create () =
  {
    counts = Array.make bucket_count 0;
    n = 0;
    sum_ns = 0.0;
    min_ns = infinity;
    max_ns = neg_infinity;
  }

let bucket_index v =
  let rec go i =
    if i >= Array.length bucket_bounds then Array.length bucket_bounds
    else if v <= bucket_bounds.(i) then i
    else go (i + 1)
  in
  go 0

let observe t v =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  t.counts.(bucket_index v) <- t.counts.(bucket_index v) + 1;
  t.n <- t.n + 1;
  t.sum_ns <- t.sum_ns +. v;
  if v < t.min_ns then t.min_ns <- v;
  if v > t.max_ns then t.max_ns <- v

let count t = t.n
let sum_ns t = t.sum_ns
let min_ns t = t.min_ns
let max_ns t = t.max_ns
let counts t = Array.copy t.counts

let of_counts ~counts ~n ~sum_ns ~min_ns ~max_ns =
  if Array.length counts <> bucket_count then
    invalid_arg
      (Printf.sprintf "Histogram.of_counts: %d buckets (scheme %s has %d)"
         (Array.length counts) scheme_id bucket_count);
  { counts = Array.copy counts; n; sum_ns; min_ns; max_ns }

(* Quantile estimate: walk the cumulative counts to the bucket that
   contains rank q*n, then interpolate linearly inside the bucket.
   The estimate is clamped to the recorded [min, max], so single-value
   distributions report that value exactly at every quantile. *)
let quantile t q =
  if t.n = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int t.n in
    let nb = Array.length bucket_bounds in
    let rec go i cum =
      if i >= Array.length t.counts then t.max_ns
      else begin
        let c = t.counts.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= target then begin
          let lo = if i = 0 then 0.0 else bucket_bounds.(i - 1) in
          let hi = if i < nb then bucket_bounds.(i) else t.max_ns in
          let frac = (target -. float_of_int cum) /. float_of_int c in
          let est = lo +. (frac *. (hi -. lo)) in
          Float.max t.min_ns (Float.min t.max_ns est)
        end
        else go (i + 1) cum'
      end
    in
    go 0 0
  end

let merge a b =
  let t = create () in
  Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
  t.n <- a.n + b.n;
  t.sum_ns <- a.sum_ns +. b.sum_ns;
  t.min_ns <- Float.min a.min_ns b.min_ns;
  t.max_ns <- Float.max a.max_ns b.max_ns;
  t
