type agg = {
  mutable count : int;
  mutable total_ns : int64;
  mutable min_ns : int64;
  mutable max_ns : int64;
}

type t = {
  spans : (string, agg) Hashtbl.t;
  counters : (string, float ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
}

let create () =
  { spans = Hashtbl.create 32; counters = Hashtbl.create 32; gauges = Hashtbl.create 8 }

let reset t =
  Hashtbl.reset t.spans;
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges

let sink t =
  {
    Sink.on_span_start = (fun ~id:_ ~parent:_ ~name:_ ~ts_ns:_ -> ());
    on_span_end =
      (fun ~id:_ ~name ~ts_ns:_ ~dur_ns ~attrs:_ ->
        match Hashtbl.find_opt t.spans name with
        | Some a ->
          a.count <- a.count + 1;
          a.total_ns <- Int64.add a.total_ns dur_ns;
          if dur_ns < a.min_ns then a.min_ns <- dur_ns;
          if dur_ns > a.max_ns then a.max_ns <- dur_ns
        | None ->
          Hashtbl.add t.spans name
            { count = 1; total_ns = dur_ns; min_ns = dur_ns; max_ns = dur_ns });
    on_counter =
      (fun ~name ~delta ~total:_ ~ts_ns:_ ->
        match Hashtbl.find_opt t.counters name with
        | Some cell -> cell := !cell +. delta
        | None -> Hashtbl.add t.counters name (ref delta));
    on_gauge =
      (fun ~name ~value ~ts_ns:_ ->
        match Hashtbl.find_opt t.gauges name with
        | Some cell -> cell := value
        | None -> Hashtbl.add t.gauges name (ref value));
  }

let span_total_ns t name =
  match Hashtbl.find_opt t.spans name with Some a -> a.total_ns | None -> 0L

let counter_total t name =
  match Hashtbl.find_opt t.counters name with Some c -> !c | None -> 0.0

let ms ns = Int64.to_float ns /. 1e6

let render t =
  let buf = Buffer.create 1024 in
  let spans =
    Hashtbl.fold (fun name a acc -> (name, a) :: acc) t.spans []
    |> List.sort (fun (na, a) (nb, b) ->
           match compare b.total_ns a.total_ns with
           | 0 -> compare na nb
           | c -> c)
  in
  if spans <> [] then begin
    Printf.bprintf buf "%-28s %6s %10s %10s %10s %10s\n" "span" "count"
      "total ms" "mean ms" "min ms" "max ms";
    List.iter
      (fun (name, a) ->
        Printf.bprintf buf "%-28s %6d %10.3f %10.3f %10.3f %10.3f\n" name
          a.count (ms a.total_ns)
          (ms a.total_ns /. float_of_int a.count)
          (ms a.min_ns) (ms a.max_ns))
      spans
  end;
  let table title tbl =
    let rows =
      Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) tbl []
      |> List.sort compare
    in
    if rows <> [] then begin
      Printf.bprintf buf "%s\n" title;
      List.iter
        (fun (name, v) -> Printf.bprintf buf "  %-34s %14g\n" name v)
        rows
    end
  in
  table "counters:" t.counters;
  table "gauges:" t.gauges;
  Buffer.contents buf
