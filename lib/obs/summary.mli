(** Human-readable aggregation sink.

    Keeps per-span-name timing aggregates (count, total, mean,
    min/max) and per-name counter totals and gauge levels; {!render}
    prints them as a plain-text table, total time descending.  The
    cheap way to see where a run spends its time without loading a
    trace file. *)

type t

val create : unit -> t

val sink : t -> Sink.t

val reset : t -> unit
(** Drop everything accumulated so far (between analysis runs). *)

val render : t -> string
(** Two sections: span timings, then counters/gauges.  Empty string if
    nothing was recorded. *)

val span_total_ns : t -> string -> int64
(** Total time recorded under a span name (0 if never seen). *)

val counter_total : t -> string -> float
(** Accumulated counter value (0 if never seen). *)
