type measurement = {
  event : Hwsim.Event.t;
  reps : float array list;
}

type t = {
  name : string;
  row_labels : string array;
  reps : int;
  measurements : measurement list;
}

let default_reps = 5

let slice_events ~ctx ~lo ~hi events =
  let n = List.length events in
  if lo < 0 || hi < lo || hi > n then
    invalid_arg
      (Printf.sprintf "%s: bad event range [%d,%d) of a %d-event catalog" ctx
         lo hi n);
  List.filteri (fun i _ -> i >= lo && i < hi) events

let range_name base ~lo ~hi = Printf.sprintf "%s[%d,%d)" base lo hi

(* One reading is derived from (seed, event name, repetition, row) —
   see Hwsim.Machine — so measuring only the events in [lo, hi) yields
   bit-identical vectors to the whole-catalog build: the shard is a
   restriction, never a re-randomization. *)
let of_activities_range ~name ~seed ~reps ~events ~lo ~hi ~rows ~row_labels =
  if Array.length rows <> Array.length row_labels then
    invalid_arg "Dataset.of_activities_range: rows/labels mismatch";
  let total = List.length events in
  let events = slice_events ~ctx:"Dataset.of_activities_range" ~lo ~hi events in
  Obs.span "dataset-build" (fun () ->
      Obs.attr_str "dataset" name;
      Obs.attr_int "reps" reps;
      if lo <> 0 || hi <> total then begin
        Obs.attr_int "lo" lo;
        Obs.attr_int "hi" hi
      end;
      let measurements =
        List.map
          (fun event ->
            if Obs.enabled () then begin
              Obs.incr "dataset.events_measured";
              Obs.add "dataset.repetitions" (float_of_int reps)
            end;
            { event; reps = Hwsim.Machine.measure_repetitions ~seed ~reps event rows })
          events
      in
      { name; row_labels; reps; measurements })

(* Compatibility wrapper: the whole catalog is the full range. *)
let of_activities ~name ~seed ~reps ~events ~rows ~row_labels =
  of_activities_range ~name ~seed ~reps ~events ~lo:0
    ~hi:(List.length events) ~rows ~row_labels

let memo f =
  (* Datasets at default repetitions are deterministic: build once. *)
  let cache = ref None in
  fun ?(reps = default_reps) () ->
    if reps = default_reps then begin
      match !cache with
      | Some d -> d
      | None ->
        let d = f ~reps in
        cache := Some d;
        d
    end
    else f ~reps

let cpu_flops =
  memo (fun ~reps ->
      of_activities ~name:"cpu-flops" ~seed:"cat-cpu-flops" ~reps
        ~events:Hwsim.Catalog_sapphire_rapids.events ~rows:Flops_kernels.rows
        ~row_labels:Flops_kernels.row_labels)

let branch =
  memo (fun ~reps ->
      of_activities ~name:"branch" ~seed:"cat-branch" ~reps
        ~events:Hwsim.Catalog_sapphire_rapids.events ~rows:Branch_kernels.rows
        ~row_labels:Branch_kernels.row_labels)

let gpu_flops =
  memo (fun ~reps ->
      of_activities ~name:"gpu-flops" ~seed:"cat-gpu-flops" ~reps
        ~events:Hwsim.Catalog_mi250x.events ~rows:Gpu_kernels.rows
        ~row_labels:Gpu_kernels.row_labels)

let zen_flops =
  memo (fun ~reps ->
      of_activities ~name:"zen-flops" ~seed:"cat-zen-flops" ~reps
        ~events:Hwsim.Catalog_zen.events ~rows:Flops_kernels.rows
        ~row_labels:Flops_kernels.row_labels)

(* Range variants of the four catalog-wide builders: measure only the
   events at catalog positions [lo, hi).  Same seeds, same rows — a
   shard's vectors are bit-identical to the corresponding slice of the
   whole-catalog dataset. *)

let cpu_flops_range ?(reps = default_reps) ~lo ~hi () =
  of_activities_range
    ~name:(range_name "cpu-flops" ~lo ~hi)
    ~seed:"cat-cpu-flops" ~reps ~events:Hwsim.Catalog_sapphire_rapids.events
    ~lo ~hi ~rows:Flops_kernels.rows ~row_labels:Flops_kernels.row_labels

let branch_range ?(reps = default_reps) ~lo ~hi () =
  of_activities_range
    ~name:(range_name "branch" ~lo ~hi)
    ~seed:"cat-branch" ~reps ~events:Hwsim.Catalog_sapphire_rapids.events ~lo
    ~hi ~rows:Branch_kernels.rows ~row_labels:Branch_kernels.row_labels

let gpu_flops_range ?(reps = default_reps) ~lo ~hi () =
  of_activities_range
    ~name:(range_name "gpu-flops" ~lo ~hi)
    ~seed:"cat-gpu-flops" ~reps ~events:Hwsim.Catalog_mi250x.events ~lo ~hi
    ~rows:Gpu_kernels.rows ~row_labels:Gpu_kernels.row_labels

let zen_flops_range ?(reps = default_reps) ~lo ~hi () =
  of_activities_range
    ~name:(range_name "zen-flops" ~lo ~hi)
    ~seed:"cat-zen-flops" ~reps ~events:Hwsim.Catalog_zen.events ~lo ~hi
    ~rows:Flops_kernels.rows ~row_labels:Flops_kernels.row_labels

(* The thread activities are a function of (kernel config, rep,
   thread) only — independent of which events a build measures — so
   shards of the same campaign can share one generation.  Cached at
   the last repetition count (shard sweeps hit the same count N
   times in a row). *)
let dcache_activities =
  let cache = ref None in
  fun ~reps ->
    match !cache with
    | Some (r, a) when r = reps -> a
    | _ ->
      let configs = Array.of_list Cache_kernels.configs in
      let a =
        Array.init reps (fun rep ->
            Array.init (Array.length configs) (fun row ->
                Array.init Cache_kernels.threads (fun thread ->
                    Cache_kernels.thread_activity configs.(row) ~rep ~thread)))
      in
      cache := Some (reps, a);
      a

(* Pre-force the activity cache from the calling (main) domain before
   shard builders run on worker domains: the workers then only read
   the populated cache.  (A concurrent miss would be benign — every
   builder computes the same arrays and the cache write is a single
   pointer store — but wasteful.) *)
let prewarm_dcache ~reps = ignore (dcache_activities ~reps)

let dcache_build ?(lo = 0) ?hi ~reduce ~reps () =
  let total = List.length Hwsim.Catalog_sapphire_rapids.events in
  let hi = Option.value hi ~default:total in
  let events =
    slice_events ~ctx:"Dataset.dcache_range" ~lo ~hi
      Hwsim.Catalog_sapphire_rapids.events
  in
  let name =
    if lo = 0 && hi = total then "dcache" else range_name "dcache" ~lo ~hi
  in
  Obs.span "dataset-build" @@ fun () ->
  Obs.attr_str "dataset" name;
  Obs.attr_int "reps" reps;
  if lo <> 0 || hi <> total then begin
    Obs.attr_int "lo" lo;
    Obs.attr_int "hi" hi
  end;
  let configs = Array.of_list Cache_kernels.configs in
  let nrows = Array.length configs in
  (* activities.(rep).(row).(thread) *)
  let activities = dcache_activities ~reps in
  let seed = "cat-dcache" in
  let reduce_thread_readings readings =
    match reduce with
    | `Median -> Numkit.Stats.median readings
    | `Mean -> Numkit.Stats.mean readings
  in
  let measure_rep event rep =
    Array.init nrows (fun row ->
        let per_thread =
          Array.mapi
            (fun thread activity ->
              Hwsim.Machine.measure
                ~seed:(Printf.sprintf "%s/thread=%d" seed thread)
                ~rep ~row event activity)
            activities.(rep).(row)
        in
        reduce_thread_readings per_thread)
  in
  let measurements =
    List.map
      (fun event ->
        if Obs.enabled () then begin
          Obs.incr "dataset.events_measured";
          Obs.add "dataset.repetitions" (float_of_int reps);
          Obs.add "dataset.thread_reductions"
            (float_of_int (reps * nrows))
        end;
        { event; reps = List.init reps (fun rep -> measure_rep event rep) })
      events
  in
  {
    name;
    row_labels = Cache_kernels.row_labels;
    reps;
    measurements;
  }

let dcache = memo (fun ~reps -> dcache_build ~reduce:`Median ~reps ())

let dcache_range ?(reps = default_reps) ~lo ~hi () =
  dcache_build ~lo ~hi ~reduce:`Median ~reps ()

let dcache_reduced ?(reps = default_reps) reduce = dcache_build ~reduce ~reps ()

let find t name =
  List.find (fun (m : measurement) -> m.event.Hwsim.Event.name = name) t.measurements

let filter_events pred t =
  { t with measurements = List.filter (fun (m : measurement) -> pred m.event) t.measurements }

let merge a b =
  if a.row_labels <> b.row_labels then invalid_arg "Dataset.merge: row labels differ";
  if a.reps <> b.reps then invalid_arg "Dataset.merge: repetition counts differ";
  List.iter
    (fun (m : measurement) ->
      if
        List.exists
          (fun (m' : measurement) ->
            m'.event.Hwsim.Event.name = m.event.Hwsim.Event.name)
          a.measurements
      then invalid_arg ("Dataset.merge: duplicate event " ^ m.event.Hwsim.Event.name))
    b.measurements;
  { a with
    name = a.name ^ "+" ^ b.name;
    measurements = a.measurements @ b.measurements }

let reps_to_csv t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "event,rep";
  Array.iter (fun l -> Buffer.add_string buf ("," ^ l)) t.row_labels;
  Buffer.add_char buf '\n';
  List.iter
    (fun (m : measurement) ->
      List.iteri
        (fun rep v ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d" m.event.Hwsim.Event.name rep);
          Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf ",%.17g" x)) v;
          Buffer.add_char buf '\n')
        m.reps)
    t.measurements;
  Buffer.contents buf

let of_reps_csv ~name csv =
  let fail line msg = failwith (Printf.sprintf "Dataset.of_reps_csv: line %d: %s" line msg) in
  let lines =
    String.split_on_char '\n' csv
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> failwith "Dataset.of_reps_csv: empty input"
  | header :: data ->
    let cols = String.split_on_char ',' header in
    (match cols with
     | "event" :: "rep" :: labels when labels <> [] ->
       let row_labels = Array.of_list labels in
       let n = Array.length row_labels in
       (* Accumulate repetition vectors per event, preserving first-
          appearance order. *)
       let order = ref [] in
       let table : (string, float array list ref) Hashtbl.t = Hashtbl.create 64 in
       List.iteri
         (fun i line ->
           let lineno = i + 2 in
           match String.split_on_char ',' line with
           | event :: _rep :: values ->
             if List.length values <> n then
               fail lineno
                 (Printf.sprintf "expected %d values, got %d" n
                    (List.length values));
             let v =
               Array.of_list
                 (List.map
                    (fun s ->
                      match float_of_string_opt (String.trim s) with
                      | Some f -> f
                      | None -> fail lineno ("bad number " ^ s))
                    values)
             in
             (match Hashtbl.find_opt table event with
              | Some cell -> cell := v :: !cell
              | None ->
                order := event :: !order;
                Hashtbl.add table event (ref [ v ]))
           | _ -> fail lineno "expected event,rep,values...")
         data;
       let measurements =
         List.rev_map
           (fun event_name ->
             let reps = List.rev !(Hashtbl.find table event_name) in
             {
               event = Hwsim.Event.make ~name:event_name ~desc:"imported" [];
               reps;
             })
           !order
       in
       let reps =
         match measurements with [] -> 0 | m :: _ -> List.length m.reps
       in
       { name; row_labels; reps; measurements }
     | _ -> fail 1 "expected header event,rep,<row labels>")

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "event";
  Array.iter (fun l -> Buffer.add_string buf ("," ^ l)) t.row_labels;
  Buffer.add_char buf '\n';
  List.iter
    (fun (m : measurement) ->
      let mean = Numkit.Stats.elementwise_mean m.reps in
      Buffer.add_string buf m.event.Hwsim.Event.name;
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%g" v)) mean;
      Buffer.add_char buf '\n')
    t.measurements;
  Buffer.contents buf
