(** Benchmark datasets: every catalog event measured over every
    benchmark row, for several repetitions.

    This is the hand-off point between the simulated hardware and the
    paper's analysis: a dataset is exactly what running a CAT
    benchmark under PAPI produces — one measurement vector per event
    per repetition, nothing else. *)

type measurement = {
  event : Hwsim.Event.t;
  reps : float array list;  (** One vector per repetition. *)
}

type t = {
  name : string;
  row_labels : string array;
  reps : int;
  measurements : measurement list;
}

val default_reps : int
(** 5 repetitions, as a CAT campaign would use. *)

val of_activities_range :
  name:string -> seed:string -> reps:int -> events:Hwsim.Event.t list ->
  lo:int -> hi:int -> rows:Hwsim.Activity.t array ->
  row_labels:string array -> t
(** Range-based collection, the primitive behind catalog sharding:
    measure only the events at catalog positions [lo, hi) (0-based,
    half-open) over every row, [reps] times, with noise streams
    derived from [seed].  Because a reading's noise stream is keyed by
    [(seed, event name, rep, row)], the shard's vectors are
    bit-identical to the corresponding slice of the whole-catalog
    dataset.  Raises [Invalid_argument] on an out-of-bounds range. *)

val of_activities :
  name:string -> seed:string -> reps:int -> events:Hwsim.Event.t list ->
  rows:Hwsim.Activity.t array -> row_labels:string array -> t
(** Whole-catalog collection: {!of_activities_range} over the full
    range (kept as the compatibility entry point). *)

val cpu_flops : ?reps:int -> unit -> t
(** CPU-FLOPs benchmark on the Sapphire Rapids catalog (48 rows). *)

val branch : ?reps:int -> unit -> t
(** Branching benchmark on the Sapphire Rapids catalog (11 rows). *)

val gpu_flops : ?reps:int -> unit -> t
(** GPU-FLOPs benchmark on the MI250X catalog (45 rows). *)

val zen_flops : ?reps:int -> unit -> t
(** The same CPU-FLOPs benchmark run on the simulated AMD Zen-class
    machine ([Hwsim.Catalog_zen]) — input for the cross-architecture
    portability demonstration. *)

val dcache : ?reps:int -> unit -> t
(** Data-cache benchmark on the Sapphire Rapids catalog (16 rows).
    Each repetition's vector entry is the {e median} across the 8
    measuring threads, the noise-suppression step of Section IV. *)

(** {2 Shard collection}

    One builder per benchmark, measuring only the catalog events at
    positions [lo, hi).  These are what {!Core.Stage.collect_shard}
    drives; each produces vectors bit-identical to the corresponding
    slice of the whole-catalog dataset (same seeds, same rows). *)

val cpu_flops_range : ?reps:int -> lo:int -> hi:int -> unit -> t
val branch_range : ?reps:int -> lo:int -> hi:int -> unit -> t
val gpu_flops_range : ?reps:int -> lo:int -> hi:int -> unit -> t
val zen_flops_range : ?reps:int -> lo:int -> hi:int -> unit -> t

val dcache_range : ?reps:int -> lo:int -> hi:int -> unit -> t
(** Data-cache shard.  The per-thread kernel activities are shared
    across shards of the same campaign (they depend only on kernel
    config, repetition and thread), so sharding does not re-simulate
    the benchmark differently. *)

val prewarm_dcache : reps:int -> unit
(** Force the shared activity cache from the calling domain.  The
    parallel shard front calls this before dispatching dcache shards
    to worker domains, so the one module-level cache in this library
    is only ever read concurrently, never raced on. *)

val dcache_reduced : ?reps:int -> [ `Median | `Mean ] -> t
(** The data-cache benchmark with an explicit thread-reduction
    choice; [`Mean] is the ablation showing why the paper uses the
    median. *)

val find : t -> string -> measurement
(** Lookup a measurement by event name; raises [Not_found]. *)

val filter_events : (Hwsim.Event.t -> bool) -> t -> t
(** Keep only matching events (rows and repetitions unchanged). *)

val merge : t -> t -> t
(** Combine two datasets over the same benchmark rows (labels and
    repetition counts must agree; event names must be disjoint).
    Use case: datasets measured in separate counter-group sessions. *)

val to_csv : t -> string
(** Mean measurement vector per event, one CSV line per event. *)

val reps_to_csv : t -> string
(** Full export: header [event,rep,<row labels>] then one line per
    (event, repetition) pair.  Lossless counterpart of {!to_csv}. *)

val of_reps_csv : name:string -> string -> t
(** Parse the {!reps_to_csv} format.  Events are reconstructed as
    opaque named events (no semantics, [Exact] noise tag — the noise
    lives in the data itself), which is exactly what an import of
    {e real} CAT measurements looks like: the analysis only ever uses
    names and numbers.  Raises [Failure] with a line number on
    malformed input. *)
