type config = {
  counters : int;
  slices : int;
  jitter : float;
}

let default_config = { counters = 8; slices = 100; jitter = 0.1 }

let validate cfg =
  if cfg.counters < 1 then invalid_arg "Multiplex: counters < 1";
  if cfg.slices < 1 then invalid_arg "Multiplex: slices < 1";
  if cfg.jitter < 0.0 then invalid_arg "Multiplex: jitter < 0"

let groups cfg ~n_events =
  validate cfg;
  max 1 ((n_events + cfg.counters - 1) / cfg.counters)

let group_of_event cfg ~n_events ~event_index =
  (* Round-robin: consecutive events land in different groups, so a
     group mixes unrelated events, as perf-style schedulers do. *)
  event_index mod groups cfg ~n_events

let measure cfg ~seed ~rep ~row ~event_index ~n_events (event : Hwsim.Event.t)
    activity =
  validate cfg;
  Obs.incr "multiplex.measurements";
  let ideal = Hwsim.Event.ideal_value event activity in
  let n_groups = groups cfg ~n_events in
  (* The event's group is active in every n_groups-th slice.  The
     total activity splits over slices with lognormal jitter; the
     tool sums the observed slices and extrapolates by the inverse of
     the observed slice fraction. *)
  let value =
    if n_groups = 1 then ideal
    else begin
      let my_group = group_of_event cfg ~n_events ~event_index in
      let rng =
        Numkit.Rng.of_string
          (Printf.sprintf "%s|mux|%s|rep=%d|row=%d" seed event.Hwsim.Event.name
             rep row)
      in
      let weights =
        Array.init cfg.slices (fun _ ->
            Numkit.Rng.lognormal rng ~mu:0.0 ~sigma:cfg.jitter)
      in
      let total_weight = Array.fold_left ( +. ) 0.0 weights in
      let observed_weight = ref 0.0 and observed_slices = ref 0 in
      Array.iteri
        (fun slice w ->
          if slice mod n_groups = my_group then begin
            observed_weight := !observed_weight +. w;
            incr observed_slices
          end)
        weights;
      if !observed_slices = 0 || total_weight = 0.0 then 0.0
      else begin
        (* Count observed during active slices, extrapolated by the
           slice-count fraction. *)
        let observed_count = ideal *. (!observed_weight /. total_weight) in
        observed_count *. (float_of_int cfg.slices /. float_of_int !observed_slices)
      end
    end
  in
  let rng_noise =
    Numkit.Rng.of_string
      (Printf.sprintf "%s|%s|rep=%d|row=%d" seed event.Hwsim.Event.name rep row)
  in
  Hwsim.Noise_model.apply event.Hwsim.Event.noise rng_noise value

let dataset cfg ~name ~seed ~reps ~events ~rows ~row_labels =
  Obs.span "multiplex-dataset" @@ fun () ->
  let n_events = List.length events in
  if Obs.enabled () then begin
    Obs.attr_str "dataset" name;
    Obs.add "multiplex.batches" (float_of_int (groups cfg ~n_events))
  end;
  let measurements =
    List.mapi
      (fun event_index event ->
        {
          Dataset.event;
          reps =
            List.init reps (fun rep ->
                Array.mapi
                  (fun row activity ->
                    measure cfg ~seed ~rep ~row ~event_index ~n_events event
                      activity)
                  rows);
        })
      events
  in
  { Dataset.name; row_labels; reps; measurements }

let branch_dataset ?(reps = Dataset.default_reps) cfg =
  dataset cfg ~name:"branch-multiplexed" ~seed:"cat-branch-mux" ~reps
    ~events:Hwsim.Catalog_sapphire_rapids.events ~rows:Branch_kernels.rows
    ~row_labels:Branch_kernels.row_labels
