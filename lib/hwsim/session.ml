type plan = {
  counters : int;
  groups : Event.t list list;
}

let plan ~counters events =
  if counters < 1 then invalid_arg "Session.plan: counters < 1";
  let rec chunk acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | e :: rest ->
      if n = counters then chunk (List.rev current :: acc) [ e ] 1 rest
      else chunk acc (e :: current) (n + 1) rest
  in
  let p = { counters; groups = chunk [] [] 0 events } in
  if Obs.enabled () then begin
    Obs.incr "session.plans";
    Obs.add "session.groups" (float_of_int (List.length p.groups));
    Obs.add "session.events_planned" (float_of_int (List.length events))
  end;
  p

let group_count plan = List.length plan.groups

let runs_needed plan ~reps =
  if reps < 0 then invalid_arg "Session.runs_needed: reps < 0";
  let runs = group_count plan * reps in
  if Obs.enabled () then Obs.add "session.runs_planned" (float_of_int runs);
  runs

let restrict plan ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Session.restrict: bad range";
  (* Cut at the SAME group boundaries as the full plan: walk the
     groups with a running catalog index and keep only the events in
     [lo, hi), dropping groups left empty.  Re-planning the slice
     would shift boundaries and change which runs a shard schedules. *)
  let idx = ref 0 in
  let groups =
    List.filter_map
      (fun g ->
        let g' =
          List.filter
            (fun _ ->
              let i = !idx in
              incr idx;
              i >= lo && i < hi)
            g
        in
        if g' = [] then None else Some g')
      plan.groups
  in
  { plan with groups }

let group_of plan name =
  let rec go i = function
    | [] -> raise Not_found
    | g :: rest ->
      if List.exists (fun (e : Event.t) -> e.Event.name = name) g then i
      else go (i + 1) rest
  in
  go 0 plan.groups

let coresident plan a b = group_of plan a = group_of plan b
