let reading_rng ~seed ~rep ~row (event : Event.t) =
  Numkit.Rng.of_string
    (Printf.sprintf "%s|%s|rep=%d|row=%d" seed event.Event.name rep row)

let measure ~seed ~rep ~row event activity =
  Obs.incr "hwsim.readings";
  let ideal = Event.ideal_value event activity in
  let rng = reading_rng ~seed ~rep ~row event in
  Noise_model.apply event.Event.noise rng ideal

let measure_vector ~seed ~rep event activities =
  if Obs.enabled () then begin
    Obs.incr "hwsim.event_sweeps";
    Obs.add "hwsim.kernel_runs" (float_of_int (Array.length activities))
  end;
  Array.mapi (fun row activity -> measure ~seed ~rep ~row event activity) activities

let measure_repetitions ~seed ~reps event activities =
  List.init reps (fun rep -> measure_vector ~seed ~rep event activities)
