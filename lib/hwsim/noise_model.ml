type t =
  | Exact
  | Gauss_rel of float
  | Gauss_abs of float
  | Mixed of float * float

let clamp_count v = Float.max 0.0 (Float.round v)

let apply t rng v =
  match t with
  | Exact -> clamp_count v
  | Gauss_rel sigma ->
    Obs.incr "hwsim.noise_draws";
    clamp_count (v *. (1.0 +. Numkit.Rng.normal rng ~mu:0.0 ~sigma))
  | Gauss_abs sigma ->
    Obs.incr "hwsim.noise_draws";
    clamp_count (v +. Numkit.Rng.normal rng ~mu:0.0 ~sigma)
  | Mixed (rel, abs_sigma) ->
    Obs.add "hwsim.noise_draws" 2.0;
    let v = v *. (1.0 +. Numkit.Rng.normal rng ~mu:0.0 ~sigma:rel) in
    clamp_count (v +. Numkit.Rng.normal rng ~mu:0.0 ~sigma:abs_sigma)

let describe = function
  | Exact -> "exact"
  | Gauss_rel s -> Printf.sprintf "gauss-rel(%g)" s
  | Gauss_abs s -> Printf.sprintf "gauss-abs(%g)" s
  | Mixed (r, a) -> Printf.sprintf "mixed(%g,%g)" r a

let is_exact = function Exact -> true | _ -> false
