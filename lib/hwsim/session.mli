(** Measurement-session planning: the CAT way of handling the
    counters-vs-events gap.

    Where {!Cat_bench.Multiplex} time-slices one benchmark run across
    event groups (cheap but noisy), CAT re-runs the whole benchmark
    once per group, so every event is counted over a complete
    execution and stays exact.  The cost is wall-clock: this module
    plans the groups and accounts for the runs a campaign needs —
    the practical trade-off behind the paper's introduction. *)

type plan = {
  counters : int;
  groups : Event.t list list;  (** Disjoint, covering, each <= counters. *)
}

val plan : counters:int -> Event.t list -> plan
(** Groups events in catalog order.  [counters >= 1]. *)

val restrict : plan -> lo:int -> hi:int -> plan
(** The sub-plan measuring catalog positions [lo, hi) (0-based, by
    position in the event list the plan was built from).  Groups are
    cut at the {e same} boundaries as the full-catalog plan — a shard
    schedules exactly the subset of the campaign's runs that touch its
    range, so per-kernel run counts and co-residency are consistent
    across shards (re-planning the slice would shift group
    boundaries).  Groups left empty are dropped.  Raises
    [Invalid_argument] on a negative or inverted range. *)

val group_count : plan -> int

val runs_needed : plan -> reps:int -> int
(** Benchmark executions for a full campaign: groups x repetitions. *)

val group_of : plan -> string -> int
(** Index of the group measuring the named event; raises
    [Not_found]. *)

val coresident : plan -> string -> string -> bool
(** Whether two events are measured during the same runs (same
    group) — relevant when comparing their readings directly. *)
