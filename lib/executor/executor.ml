(* Executor: sequential reference + persistent domain pool.

   The pool is deliberately simple: one mutex, two condition
   variables, task distribution by shared-counter grab.  A batch is
   published by bumping [generation]; workers that see a fresh
   generation pull task indices until the counter is exhausted.  The
   submitting domain participates in its own batch, then blocks until
   [pending] reaches zero, so at most one batch is in flight and the
   pool state can be reused without further synchronization.

   Exceptions raised by tasks are recorded (first one wins), the rest
   of the batch still drains, and the exception is re-raised on the
   submitting domain with its original backtrace. *)

type t = Seq | Domains of int

let of_jobs n = if n <= 1 then Seq else Domains n
let jobs = function Seq -> 1 | Domains n -> n

let name = function
  | Seq -> "seq"
  | Domains n -> Printf.sprintf "domains:%d" n

let default_exec = ref Seq
let default () = !default_exec
let set_default e = default_exec := e

let with_default e f =
  let saved = !default_exec in
  default_exec := e;
  Fun.protect ~finally:(fun () -> default_exec := saved) f

let worker_flag : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_flag

type pool = {
  mutex : Mutex.t;
  work : Condition.t;  (* workers: a new batch (or stop) is available *)
  drained : Condition.t;  (* submitter: pending reached zero *)
  mutable generation : int;
  mutable body : int -> unit;
  mutable next : int;  (* next task index to grab *)
  mutable total : int;
  mutable pending : int;  (* tasks not yet completed *)
  mutable width : int;  (* workers allowed to join the current batch *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let pool_ref : pool option ref = ref None

(* Grab-and-run loop shared by workers and the submitting domain.
   Called and returns with [p.mutex] held. *)
let drain_tasks p =
  while p.next < p.total do
    let i = p.next in
    p.next <- i + 1;
    Mutex.unlock p.mutex;
    let fail =
      try
        p.body i;
        None
      with e -> Some (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock p.mutex;
    (match fail with
    | Some f when p.failure = None -> p.failure <- Some f
    | _ -> ());
    p.pending <- p.pending - 1;
    if p.pending = 0 then Condition.broadcast p.drained
  done

let worker_main p k =
  Domain.DLS.set worker_flag true;
  let last_gen = ref 0 in
  Mutex.lock p.mutex;
  let rec loop () =
    if p.stop then Mutex.unlock p.mutex
    else if p.generation <> !last_gen && k < p.width then begin
      last_gen := p.generation;
      drain_tasks p;
      loop ()
    end
    else begin
      Condition.wait p.work p.mutex;
      loop ()
    end
  in
  loop ()

let shutdown () =
  match !pool_ref with
  | None -> ()
  | Some p ->
    Mutex.lock p.mutex;
    p.stop <- true;
    Condition.broadcast p.work;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.workers;
    pool_ref := None

let get_pool () =
  match !pool_ref with
  | Some p -> p
  | None ->
    let p =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        drained = Condition.create ();
        generation = 0;
        body = ignore;
        next = 0;
        total = 0;
        pending = 0;
        width = 0;
        failure = None;
        stop = false;
        workers = [];
      }
    in
    pool_ref := Some p;
    at_exit shutdown;
    p

let ensure_workers p count =
  let have = List.length p.workers in
  for k = have to count - 1 do
    p.workers <- Domain.spawn (fun () -> worker_main p k) :: p.workers
  done

(* Run [body 0 .. body (n-1)] on the pool with [extra] worker domains
   plus the calling domain.  Blocks until the batch drains. *)
let run_batch ~extra n body =
  let p = get_pool () in
  Mutex.lock p.mutex;
  ensure_workers p extra;
  p.generation <- p.generation + 1;
  p.body <- body;
  p.next <- 0;
  p.total <- n;
  p.pending <- n;
  p.width <- extra;
  p.failure <- None;
  Condition.broadcast p.work;
  (* The submitting domain participates in its own batch; while it
     does, it counts as a worker so a task that re-enters map/
     iter_ranges on this domain degrades to sequential instead of
     corrupting the in-flight batch. *)
  let was_worker = Domain.DLS.get worker_flag in
  Domain.DLS.set worker_flag true;
  drain_tasks p;
  Domain.DLS.set worker_flag was_worker;
  while p.pending > 0 do
    Condition.wait p.drained p.mutex
  done;
  let failure = p.failure in
  p.body <- ignore;
  p.failure <- None;
  Mutex.unlock p.mutex;
  match failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let resolve = function Some e -> e | None -> !default_exec

let map ?executor n f =
  match resolve executor with
  | Seq -> Array.init n f
  | Domains j when j <= 1 || n <= 1 || in_worker () -> Array.init n f
  | Domains j ->
    let slots = Array.make n None in
    run_batch
      ~extra:(min (j - 1) (n - 1))
      n
      (fun i -> slots.(i) <- Some (f i));
    Array.map
      (function Some v -> v | None -> invalid_arg "Executor.map: lost slot")
      slots

(* Split [lo, hi) into [parts] contiguous ranges of near-equal width,
   wider ranges first. *)
let split ~parts ~lo ~hi =
  let n = hi - lo in
  let base = n / parts and rem = n mod parts in
  let ranges = Array.make parts (0, 0) in
  let start = ref lo in
  for k = 0 to parts - 1 do
    let w = base + (if k < rem then 1 else 0) in
    ranges.(k) <- (!start, !start + w);
    start := !start + w
  done;
  ranges

let iter_ranges ?executor ~lo ~hi f =
  if hi > lo then
    match resolve executor with
    | Seq -> f lo hi
    | Domains j when j <= 1 || hi - lo <= 1 || in_worker () -> f lo hi
    | Domains j ->
      let parts = min j (hi - lo) in
      let ranges = split ~parts ~lo ~hi in
      run_batch ~extra:(parts - 1) parts (fun k ->
          let sub_lo, sub_hi = ranges.(k) in
          f sub_lo sub_hi)
