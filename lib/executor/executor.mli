(** Execution strategy for the embarrassingly parallel parts of the
    pipeline: shard collection/classification and the per-column QRCP
    panel passes.

    {1 Contract}

    An executor runs a batch of independent tasks and returns when all
    of them have finished.  Two implementations exist:

    - [Seq] — the bit-exact reference.  Tasks run in index order on
      the calling domain, with no wrapping of any kind.  This is
      byte-for-byte the pre-executor behavior.
    - [Domains n] — a persistent pool of [n - 1] worker domains plus
      the calling domain.  Tasks are handed out by an atomic index
      grab, so assignment of tasks to domains is nondeterministic —
      callers must only submit tasks whose results are independent of
      execution order and placement.

    Determinism argument: every call site partitions work into tasks
    whose outputs are written to disjoint, preallocated slots (array
    cells indexed by task, or disjoint column ranges of a matrix
    buffer).  Within each task the floating-point operation order is
    identical to the sequential reference — the panel kernels split by
    {e columns} and each column's accumulation runs entirely inside
    one task — so the bits written do not depend on which domain ran
    the task or when.  The only ordered side channel is observability:
    call sites capture [Obs] events per task and replay them on the
    calling domain in task-index order (see [Obs.with_capture]).

    {1 Shared-state / RNG invariant}

    Tasks submitted to [Domains] must not share mutable state except
    through their disjoint output slots.  In particular no random
    generator may be shared across tasks: [Hwsim.Machine] derives a
    fresh [Numkit.Rng] from the pure key [(seed, event, rep, row)] for
    every reading, so shard workers never observe generator state from
    another shard — this is what makes parallel collection bit-exact.
    The one module-level cache reachable from shard tasks
    ([Cat_bench.Dataset.dcache_activities]) is pre-forced on the
    calling domain before dispatch.  Audited 2026-08: no other mutable
    state in [hwsim]/[cat_bench] escapes into tasks.

    Nested submission (a task that itself calls [map]/[iter_ranges])
    degrades to sequential execution on the worker — the pool is never
    re-entered, so it cannot deadlock. *)

type t =
  | Seq  (** sequential reference — current behavior, bit-exact *)
  | Domains of int
      (** [Domains n]: calling domain + [n - 1] pooled workers *)

val of_jobs : int -> t
(** [of_jobs n] is [Seq] when [n <= 1], [Domains n] otherwise. *)

val jobs : t -> int
(** Concurrency width: [1] for [Seq], [n] for [Domains n]. *)

val name : t -> string
(** ["seq"] or ["domains:N"] — for manifests and diagnostics. *)

val default : unit -> t
(** Process-wide default, [Seq] until [set_default].  The CLI [--jobs]
    flag sets it; the panel kernels and [Stage.run_sharded] read it. *)

val set_default : t -> unit

val with_default : t -> (unit -> 'a) -> 'a
(** Run a thunk with the default temporarily replaced (restored on
    exception). *)

val in_worker : unit -> bool
(** True on a pool worker domain (or inside a task the calling domain
    runs on behalf of the pool).  Used to force nested parallel calls
    to degrade to sequential. *)

val map : ?executor:t -> int -> (int -> 'a) -> 'a array
(** [map n f] is [Array.init n f] under [Seq]; under [Domains] the
    [f i] calls run concurrently (each result written to slot [i]).
    [?executor] defaults to [default ()].  Falls back to sequential
    when [n <= 1] or when already inside a worker.  If any task
    raises, the first exception (by completion order) is re-raised
    after the whole batch has drained. *)

val iter_ranges : ?executor:t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [iter_ranges ~lo ~hi f] covers [\[lo, hi)] with disjoint
    contiguous subranges and calls [f sub_lo sub_hi] on each — one
    range per job under [Domains], a single [f lo hi] call under
    [Seq].  The kernels use this to split panel passes by column. *)
