type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_string f =
  if Float.is_finite f then begin
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f
  end
  else "null"

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad level = Buffer.add_string buf (String.make (level * indent) ' ') in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_string f)
    | Str s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (level + 1);
          go (level + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (level + 1);
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf ": ";
          go (level + 1) v)
        fields;
      Buffer.add_char buf '\n';
      pad level;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* Single-line form, for line-oriented logs (JSONL). *)
let to_string_compact t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_string f)
    | Str s -> Buffer.add_string buf (escape_string s)
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape_string k);
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let n = String.length s in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    if
      !pos + String.length lit <= n
      && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail (Printf.sprintf "bad literal (expected %s)" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'; advance ()
        | '\\' -> Buffer.add_char buf '\\'; advance ()
        | '/' -> Buffer.add_char buf '/'; advance ()
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'b' -> Buffer.add_char buf '\b'; advance ()
        | 'f' -> Buffer.add_char buf '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          (* The emitter only writes \u for control characters; decode
             code points below 256 to the byte, others to '?' (we never
             emit them, but a foreign document should still parse). *)
          Buffer.add_char buf (if code < 256 then Char.chr code else '?');
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float_opt = function Num f -> Some f | _ -> None

(* Evidence values can legitimately be non-finite (a NaN variability
   from a corrupt import is itself evidence), and plain JSON numbers
   cannot carry them — encode non-finite floats as tagged strings so
   documents round-trip losslessly.  Shared by the provenance ledger
   and the pipeline's shard artifacts. *)
let fnum f =
  if Float.is_finite f then Num f
  else if Float.is_nan f then Str "nan"
  else if f > 0.0 then Str "inf"
  else Str "-inf"

let fnum_opt = function
  | Num f -> Some f
  | Str "nan" -> Some Float.nan
  | Str "inf" -> Some Float.infinity
  | Str "-inf" -> Some Float.neg_infinity
  | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
