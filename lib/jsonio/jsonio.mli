(** Minimal JSON emission and parsing (no dependencies).

    Used to export derived presets, experiment records and the
    provenance ledger in a form other tools can consume, and to read
    them back.  Numbers are printed with [%.17g] so a round-trip
    through {!of_string} (or any standards-compliant parser) preserves
    doubles exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Pretty-printed with [indent] spaces per level (default 2);
    strings are escaped per RFC 8259.  Non-finite numbers are emitted
    as [null] (JSON has no representation for them). *)

val to_string_compact : t -> string
(** Single-line rendering (no whitespace) — for line-oriented logs
    like the benchmark trajectory (JSONL).  Parses back with
    {!of_string} exactly like the pretty form. *)

val escape_string : string -> string
(** The quoted, escaped form of a string (exposed for tests). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  [Error msg] carries the byte
    offset of the first problem.  Duplicate object keys are kept in
    order ({!member} returns the first). *)

(** {1 Accessors}

    Structure-walking helpers for decoding parsed documents. *)

val member : string -> t -> t option
(** Field lookup; [None] for missing fields and non-objects. *)

val fnum : float -> t
(** Non-finite-safe number encoding: finite floats become {!Num},
    non-finite ones the tagged strings ["nan"] / ["inf"] / ["-inf"],
    so evidence values round-trip losslessly (JSON itself has no
    representation for them).  Decode with {!fnum_opt}. *)

val fnum_opt : t -> float option
(** Inverse of {!fnum}: accepts {!Num} and the three tagged strings;
    [None] for anything else. *)

val to_float_opt : t -> float option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
