(** Result-side checks in the lint vocabulary (rules [result/*]) —
    the fold of [Core.Validate]'s result-validation into the single
    diagnostics vocabulary.

    The static half ({!analyze_combination}) runs with zero kernel
    executions; {!diagnose_reports} converts reports that
    [Core.Validate] (which does measure) already produced. *)

val default_error_threshold : float
(** 0.05: the relative error above which a validation report becomes
    an error diagnostic. *)

val analyze_combination :
  ?category:string ->
  catalog:Hwsim.Event.t list ->
  Core.Metric_solver.metric_def ->
  Core.Diagnostic.t list
(** [result/missing-event] (error) for every combination term naming
    an event the catalog does not define — the failure
    [Validate.evaluate_combination] would hit as [Not_found] at
    measurement time. *)

val diagnose_reports :
  ?category:string ->
  ?threshold:float ->
  Core.Validate.report list ->
  Core.Diagnostic.t list
(** [result/relative-error] (error) for every report whose relative
    error exceeds [threshold] (default
    {!default_error_threshold}). *)
