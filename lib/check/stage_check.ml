(* Schema agreement between the staged pipeline's artifact encoders
   and decoders: a synthetic classified shard must survive the
   to_json -> of_json round trip structurally intact, and an artifact
   document must decode under this build's schema version.  Catches
   the drift mode where an encoder gains a field (or bumps the
   version) without the decoder following — before a multi-machine
   sweep ships artifacts nobody can merge. *)

module D = Core.Diagnostic
module Stage = Core.Stage

let diag ?category ?(data = []) rule severity subject fmt =
  Printf.ksprintf (fun msg -> D.make ?category ~data ~rule ~severity ~subject msg) fmt

(* A minimal but fully populated shard: two events, one kept and one
   rejected, with a non-finite variability to exercise the fnum
   encoding. *)
let synthetic_shard () =
  let event name desc = Hwsim.Event.make ~name ~desc [] in
  {
    Stage.category = "lint-synthetic";
    machine = "lint (no machine)";
    shard_config =
      { Stage.tau = 1e-10; alpha = 5e-4; projection_tol = 0.02; reps = 3 };
    range = { Stage.lo = 0; hi = 2 };
    total = 2;
    row_labels = [| "row0"; "row1" |];
    measure = "max-rnmse";
    entries =
      [
        {
          Core.Noise_filter.event = event "LINT_EVENT_A" "synthetic kept event";
          variability = 0.0;
          mean = Linalg.Vec.of_array [| 1.0; 2.0 |];
          status = Core.Noise_filter.Kept;
        };
        {
          Core.Noise_filter.event = event "LINT_EVENT_B" "synthetic noisy event";
          variability = Float.nan;
          mean = Linalg.Vec.of_array [| 0.5; Float.infinity |];
          status = Core.Noise_filter.Too_noisy;
        };
      ];
  }

let analyze_artifact json =
  match Stage.shard_of_json json with
  | Ok _ -> []
  | Error msg ->
    [
      diag
        ~data:[ ("decoder_error", Jsonio.Str msg);
                ("decoder_version",
                 Jsonio.Num (float_of_int Stage.shard_schema_version)) ]
        "stage/schema-drift" D.Error "classified-shard"
        "artifact does not decode under this build's shard schema \
         (version %d): %s"
        Stage.shard_schema_version msg;
    ]

let roundtrip () =
  let shard = synthetic_shard () in
  let json = Stage.shard_to_json shard in
  (* The emitted document must also survive the strict text parser:
     encoder -> to_string -> of_string -> decoder is the actual
     multi-process path. *)
  match Jsonio.of_string (Jsonio.to_string json) with
  | Error msg ->
    [
      diag
        ~data:[ ("parser_error", Jsonio.Str msg) ]
        "stage/schema-drift" D.Error "classified-shard"
        "encoded artifact is not parseable JSON: %s" msg;
    ]
  | Ok reparsed -> (
    match Stage.shard_of_json reparsed with
    | Error msg ->
      [
        diag
          ~data:[ ("decoder_error", Jsonio.Str msg);
                  ("decoder_version",
                   Jsonio.Num (float_of_int Stage.shard_schema_version)) ]
          "stage/schema-drift" D.Error "classified-shard"
          "encoder output (schema version %d) is rejected by the decoder: %s"
          Stage.shard_schema_version msg;
      ]
    | Ok decoded ->
      if Stage.shard_equal shard decoded then []
      else
        [
          diag "stage/schema-drift" D.Error "classified-shard"
            "shard artifact round trip is lossy: decoded shard differs \
             structurally from the encoded one";
        ])
