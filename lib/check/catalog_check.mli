(** Static analysis of hardware-event catalogs (rules [catalog/*]).

    Name collisions are the catalog-level failure mode: readings,
    provenance entries and shard merges are all keyed by event name,
    so a duplicate within a catalog (or, for multi-machine sweeps, a
    collision across the SPR / MI250X / Zen catalogs) would silently
    alias two different counters. *)

val analyze_catalog :
  name:string -> Hwsim.Event.t list -> Core.Diagnostic.t list
(** Rules emitted: [catalog/empty-catalog], [catalog/duplicate-event]
    (error: aliased readings), [catalog/no-terms] (info: a declared
    counter no CAT workload can move — the realistic clutter the
    shipped catalogs model on purpose). *)

val cross_collisions :
  (string * Hwsim.Event.t list) list -> Core.Diagnostic.t list
(** [cross_collisions [(name, events); ...]] reports
    [catalog/cross-collision] (warn) for every event name present in
    more than one catalog.  Intra-catalog duplicates are
    {!analyze_catalog}'s job and do not double-report here. *)
