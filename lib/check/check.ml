(* The static pre-flight analyzer: one entry point over every
   declarative input of the pipeline — expectation bases, metric
   signatures, event catalogs, thresholds, artifact schemas — with
   zero kernel executions.  Individual analyses live in the
   per-concern modules (Basis_check, Signature_check, Catalog_check,
   Param_check, Stage_check, Result_check); this module wires them to
   the shipped categories and catalogs, owns the rule registry, the
   versioned report JSON, and the optional Pipeline pre-flight gate. *)

module Diagnostic = Core.Diagnostic
module D = Diagnostic

(* Re-export the analysis passes: [check] is the library's main
   module, so siblings are invisible unless surfaced here. *)
module Basis_check = Basis_check
module Signature_check = Signature_check
module Catalog_check = Catalog_check
module Param_check = Param_check
module Stage_check = Stage_check
module Result_check = Result_check

(* ------------------------------------------------------------------ *)
(* Rule registry                                                       *)
(* ------------------------------------------------------------------ *)

type rule = {
  id : string;
  severity : D.severity;
  summary : string;
  grounding : string;
}

let rule id severity summary grounding = { id; severity; summary; grounding }

let rules =
  [
    rule "basis/empty" D.Error "Expectation basis has no directions"
      "Sec. III-B: E's columns are the ideal events";
    rule "basis/duplicate-label" D.Error
      "Two basis directions share one symbol"
      "Signatures key coordinates by symbol";
    rule "basis/zero-direction" D.Error
      "A direction is all-zero over the benchmark rows"
      "Sec. III-B: every ideal must be exercised by some kernel";
    rule "basis/duplicate-direction" D.Error
      "Two directions are elementwise identical"
      "Identical columns make E rank-deficient";
    rule "basis/near-colinear" D.Warn
      "Two directions subtend |cos| >= 0.999"
      "Near-colinear expectations are indistinguishable under noise";
    rule "basis/rank-deficient" D.Error
      "rank(E) is below the direction count"
      "Least-squares coordinates (Sec. VI) are non-unique";
    rule "basis/ill-conditioned" D.Warn
      "cond(E) exceeds 1e6"
      "Conditioning bounds the noise amplification of the fit";
    rule "basis/non-finite" D.Error
      "An ideal vector contains NaN or infinity"
      "Expected counts are finite by definition";
    rule "ideal/shape-mismatch" D.Error
      "Ideal vector length differs from the declared benchmark rows"
      "One entry per kernel row (Sec. III-B)";
    rule "ideal/negative-entry" D.Error
      "An ideal expected count is negative"
      "Ideal events count occurrences";
    rule "sig/duplicate-metric" D.Error
      "Two signatures define the same metric name"
      "Lookups by name silently use the first";
    rule "sig/empty-metric" D.Error "A signature has no coordinates"
      "Tables I-IV: a metric states what it counts";
    rule "sig/dangling-direction" D.Error
      "A signature references an undefined basis symbol"
      "to_vector raises Not_found at run time";
    rule "sig/duplicate-coordinate" D.Error
      "A basis symbol appears twice in one signature"
      "to_vector overwrites, not sums (latent defect class)";
    rule "sig/zero-coefficient" D.Warn
      "A signature coordinate has coefficient 0"
      "Dead weight; usually an editing mistake";
    rule "sig/unused-direction" D.Info
      "No signature references a basis direction"
      "Direction constrains projection but defines no metric";
    rule "catalog/empty-catalog" D.Error "A catalog declares no events"
      "Nothing to measure";
    rule "catalog/duplicate-event" D.Error
      "An event name appears twice in one catalog"
      "Readings/ledger/shard merges key by name (Roehl et al.: \
       validate event definitions)";
    rule "catalog/cross-collision" D.Warn
      "An event name exists in more than one machine catalog"
      "Multi-machine sweeps would merge different counters";
    rule "catalog/no-terms" D.Info
      "An event has no activity terms and zero offset"
      "Modelled PMU clutter; the noise filter discards it (Fig. 2)";
    rule "param/tau-out-of-range" D.Error "tau outside (0, 1)"
      "Eq. 4 variabilities are relative errors";
    rule "param/tau-regime" D.Warn
      "tau outside the paper's per-category regime"
      "Sec. IV: near-zero for exact counts, ~0.1 for dcache";
    rule "param/alpha-out-of-range" D.Error "alpha outside (0, 1)"
      "Algorithm 2's rounding grid";
    rule "param/beta-mismatch" D.Error
      "beta differs from ||(alpha,...,alpha)||"
      "Algorithm 2 line 3 defines beta from alpha";
    rule "param/projection-tol-out-of-range" D.Error
      "Projection tolerance outside (0, 1)"
      "Relative residuals live in [0, 1]";
    rule "param/reps-too-few" D.Error "Fewer than 2 repetitions"
      "Eq. 4 is pairwise over repetition vectors";
    rule "param/unknown-backend" D.Error
      "Unknown storage backend name"
      "[--backend] selects a compiled Linalg storage backend";
    rule "param/unknown-jobs" D.Error
      "Impossible or wasteful --jobs count"
      "[--jobs] sizes the executor's domain pool (error below 1, \
       warning above the shard count)";
    rule "stage/schema-drift" D.Error
      "Shard artifact encoder and decoder disagree"
      "Multi-machine sweeps ship classified-shard JSON between builds";
    rule "result/missing-event" D.Error
      "A metric combination names an event absent from the catalog"
      "Validation would raise Not_found (CounterPoint: check counter \
       assumptions mechanically)";
    rule "result/relative-error" D.Error
      "A validated metric misses its app ground truth"
      "Sec. VI: backward error near zero iff composable";
  ]

let find_rule id = List.find_opt (fun r -> r.id = id) rules

let rules_table () =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "%-34s %-6s %s\n" "RULE" "LEVEL" "CATCHES");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-34s %-6s %s\n" r.id
           (D.severity_name r.severity)
           r.summary))
    rules;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Runners over the shipped categories and catalogs                    *)
(* ------------------------------------------------------------------ *)

let rows_declared = function
  | Core.Category.Cpu_flops -> Array.length Cat_bench.Flops_kernels.rows
  | Core.Category.Branch -> Array.length Cat_bench.Branch_kernels.rows
  | Core.Category.Gpu_flops -> Array.length Cat_bench.Gpu_kernels.rows
  | Core.Category.Dcache -> List.length Cat_bench.Cache_kernels.configs

let catalog_name = function
  | Core.Category.Cpu_flops | Core.Category.Branch | Core.Category.Dcache ->
    "sapphire-rapids"
  | Core.Category.Gpu_flops -> "mi250x"

let shipped_catalogs () =
  [
    ("sapphire-rapids", Hwsim.Catalog_sapphire_rapids.events);
    ("mi250x", Hwsim.Catalog_mi250x.events);
    ("zen", Hwsim.Catalog_zen.events);
  ]

let lint_category ?config c =
  let name = Core.Category.name c in
  let config =
    match config with Some c' -> c' | None -> Core.Pipeline.default_config c
  in
  let ideals = Core.Category.ideals c in
  let rows = rows_declared c in
  let labels =
    Array.of_list (List.map (fun i -> i.Cat_bench.Ideal.label) ideals)
  in
  Basis_check.analyze ~category:name ~expected_rows:rows ideals
  @ Signature_check.analyze ~category:name ~labels
      (Core.Category.signatures c)
  @ Param_check.analyze ~category:name ~config ~rows ()

let run_catalogs () =
  let catalogs = shipped_catalogs () in
  List.concat_map
    (fun (name, events) -> Catalog_check.analyze_catalog ~name events)
    catalogs
  @ Catalog_check.cross_collisions catalogs

let run_all ?(categories = Core.Category.all) () =
  List.concat_map (fun c -> lint_category c) categories
  @ run_catalogs () @ Stage_check.roundtrip ()

(* ------------------------------------------------------------------ *)
(* Versioned report JSON                                               *)
(* ------------------------------------------------------------------ *)

let report_schema_version = 1

let report_to_json ds =
  Jsonio.Obj
    [
      ("schema_version", Jsonio.Num (float_of_int report_schema_version));
      ("kind", Jsonio.Str "lint-report");
      ( "totals",
        Jsonio.Obj
          [
            ("errors", Jsonio.Num (float_of_int (D.count D.Error ds)));
            ("warnings", Jsonio.Num (float_of_int (D.count D.Warn ds)));
            ("infos", Jsonio.Num (float_of_int (D.count D.Info ds)));
          ] );
      ("diagnostics", Jsonio.List (List.map D.to_json ds));
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let report_of_json json =
  let ctx = "lint-report" in
  let* version =
    match Jsonio.member "schema_version" json with
    | Some (Jsonio.Num v) when Float.is_integer v -> Ok (int_of_float v)
    | Some _ -> Error (ctx ^ ": field \"schema_version\" is not an integer")
    | None -> Error (ctx ^ ": missing field \"schema_version\"")
  in
  if version <> report_schema_version then
    Error
      (Printf.sprintf
         "unsupported lint-report schema version %d (this build reads \
          version %d)"
         version report_schema_version)
  else
    let* kind =
      match Jsonio.member "kind" json with
      | Some (Jsonio.Str s) -> Ok s
      | Some _ -> Error (ctx ^ ": field \"kind\" is not a string")
      | None -> Error (ctx ^ ": missing field \"kind\"")
    in
    if kind <> "lint-report" then
      Error (Printf.sprintf "%s: unexpected kind %S" ctx kind)
    else
      let* entries =
        match Jsonio.member "diagnostics" json with
        | Some (Jsonio.List l) -> Ok l
        | Some _ -> Error (ctx ^ ": field \"diagnostics\" is not a list")
        | None -> Error (ctx ^ ": missing field \"diagnostics\"")
      in
      map_result D.of_json entries

(* ------------------------------------------------------------------ *)
(* The optional pre-flight gate                                        *)
(* ------------------------------------------------------------------ *)

let gate_lint c =
  lint_category c
  @ Catalog_check.analyze_catalog ~name:(catalog_name c)
      (Core.Category.events c)

let install_gate () = Core.Stage.set_preflight (Some gate_lint)

let remove_gate () = Core.Stage.set_preflight None

let gate_installed () = Core.Stage.preflight_installed ()
