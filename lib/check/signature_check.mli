(** Static analysis of metric signatures against their basis (rules
    [sig/*]).

    Catches the failure the paper's pipeline would otherwise hit deep
    inside the metric solve — a signature naming a direction the
    basis does not define — plus the silent ones: a repeated basis
    symbol in one signature is {e overwritten}, not summed, by
    [Signature.to_vector] (rule [sig/duplicate-coordinate]); an empty
    signature fits vacuously; a duplicate metric name shadows its
    twin in lookups. *)

val analyze :
  ?category:string ->
  labels:string array ->
  Core.Signature.t list ->
  Core.Diagnostic.t list
(** [analyze ~labels sigs] checks every signature against the basis
    symbols [labels].  Rules emitted: [sig/duplicate-metric],
    [sig/empty-metric], [sig/dangling-direction],
    [sig/duplicate-coordinate], [sig/zero-coefficient],
    [sig/unused-direction]. *)
