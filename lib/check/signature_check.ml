(* Static analysis of metric signatures against their basis: every
   coordinate must name a real direction exactly once, every metric
   must constrain something, and (informationally) every direction
   ought to be used by some metric. *)

module D = Core.Diagnostic

let diag ?category ?(data = []) rule severity subject fmt =
  Printf.ksprintf (fun msg -> D.make ?category ~data ~rule ~severity ~subject msg) fmt

let analyze ?category ~labels (signatures : Core.Signature.t list) =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  let label_set = Hashtbl.create 32 in
  Array.iter (fun l -> Hashtbl.replace label_set l ()) labels;
  let used = Hashtbl.create 32 in
  let metric_seen = Hashtbl.create 16 in
  List.iter
    (fun (s : Core.Signature.t) ->
      (match Hashtbl.find_opt metric_seen s.metric with
      | Some () ->
        emit
          (diag ?category "sig/duplicate-metric" D.Error s.metric
             "two signatures define a metric of this name: lookups by name \
              silently use the first")
      | None -> ());
      Hashtbl.replace metric_seen s.metric ();
      if s.coords = [] then
        emit
          (diag ?category "sig/empty-metric" D.Error s.metric
             "signature has no coordinates: the metric constrains nothing \
              and its least-squares fit is vacuous");
      let coord_seen = Hashtbl.create 8 in
      List.iter
        (fun (label, coef) ->
          Hashtbl.replace used label ();
          if not (Hashtbl.mem label_set label) then
            emit
              (diag ?category
                 ~data:[ ("symbol", Jsonio.Str label) ]
                 "sig/dangling-direction" D.Error s.metric
                 "coordinate references basis symbol %S, which the basis \
                  does not define (Signature.to_vector would raise at run \
                  time)"
                 label);
          (match Hashtbl.find_opt coord_seen label with
          | Some () ->
            (* Latent defect class: Signature.to_vector materializes
               coordinates with Vec.set, so a repeated symbol silently
               overwrites the earlier coefficient instead of adding. *)
            emit
              (diag ?category
                 ~data:[ ("symbol", Jsonio.Str label) ]
                 "sig/duplicate-coordinate" D.Error s.metric
                 "basis symbol %S appears twice in this signature: \
                  to_vector keeps only the last coefficient (silent \
                  overwrite, not a sum)"
                 label)
          | None -> ());
          Hashtbl.replace coord_seen label ();
          if coef = 0.0 then
            emit
              (diag ?category
                 ~data:[ ("symbol", Jsonio.Str label) ]
                 "sig/zero-coefficient" D.Warn s.metric
                 "coordinate on %S has coefficient 0: dead weight that \
                  suggests an editing mistake"
                 label))
        s.coords)
    signatures;
  if signatures <> [] then
    Array.iter
      (fun l ->
        if not (Hashtbl.mem used l) then
          emit
            (diag ?category "sig/unused-direction" D.Info l
               "no signature references this basis direction: it constrains \
                the projection but defines no metric"))
      labels;
  List.rev !acc
