(* Static analysis of an expectation basis, given as the declarative
   ideal list it is built from (so defects that Expectation.of_ideals
   would reject with an exception surface as diagnostics instead, and
   defects it would accept silently — duplicate directions, near
   colinearity, rank deficiency — are caught before any run). *)

module D = Core.Diagnostic

let colinear_cos_threshold = 0.999
(* Below 1/rank-tol: past 1e8 the basis reads as rank-deficient
   (tol 1e-8), so the warn band is (1e6, 1e8). *)
let condition_warn_threshold = 1e6

let fnum = Jsonio.fnum

let diag ?category ?(data = []) rule severity subject fmt =
  Printf.ksprintf (fun msg -> D.make ?category ~data ~rule ~severity ~subject msg) fmt

let is_finite_vector v = Array.for_all Float.is_finite v

let all_zero v = Array.for_all (fun x -> x = 0.0) v

(* Exact elementwise equality: the duplicate-direction rule flags
   literal copy-paste duplicates; near-duplicates fall to the
   colinearity rule. *)
let same_vector a b =
  Array.length a = Array.length b && Array.for_all2 Float.equal a b

let cos_angle a b =
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  Array.iteri
    (fun i x ->
      dot := !dot +. (x *. b.(i));
      na := !na +. (x *. x);
      nb := !nb +. (b.(i) *. b.(i)))
    a;
  if !na = 0.0 || !nb = 0.0 then 0.0
  else !dot /. (sqrt !na *. sqrt !nb)

let analyze ?category ?expected_rows (ideals : Cat_bench.Ideal.ideal list) =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  (match ideals with
  | [] ->
    emit
      (diag ?category "basis/empty" D.Error "basis"
         "expectation basis has no directions: nothing can be projected or \
          fitted")
  | first :: _ ->
    let n = List.length ideals in
    let arr = Array.of_list ideals in
    (* Shape: every direction against the kernel declaration's row
       count (or, absent that, against the first direction). *)
    let rows =
      match expected_rows with
      | Some r -> r
      | None -> Array.length first.Cat_bench.Ideal.vector
    in
    Array.iter
      (fun (i : Cat_bench.Ideal.ideal) ->
        let len = Array.length i.vector in
        if len <> rows then
          emit
            (diag ?category
               ~data:[ ("expected_rows", fnum (float_of_int rows));
                       ("actual_rows", fnum (float_of_int len)) ]
               "ideal/shape-mismatch" D.Error i.label
               "ideal vector has %d entries but the kernel declarations \
                define %d benchmark rows"
               len rows))
      arr;
    (* Entry-level sanity: expected counts are finite and non-negative. *)
    Array.iter
      (fun (i : Cat_bench.Ideal.ideal) ->
        if not (is_finite_vector i.vector) then
          emit
            (diag ?category "basis/non-finite" D.Error i.label
               "ideal vector contains NaN or infinite expected counts");
        Array.iteri
          (fun r x ->
            if Float.is_finite x && x < 0.0 then
              emit
                (diag ?category
                   ~data:[ ("row", fnum (float_of_int r)); ("value", fnum x) ]
                   "ideal/negative-entry" D.Error i.label
                   "expected count %g at benchmark row %d is negative: ideal \
                    events count occurrences"
                   x r))
          i.vector)
      arr;
    (* Label uniqueness. *)
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun (i : Cat_bench.Ideal.ideal) ->
        (match Hashtbl.find_opt seen i.Cat_bench.Ideal.label with
        | Some () ->
          emit
            (diag ?category "basis/duplicate-label" D.Error i.label
               "two basis directions share this symbol: signatures \
                referencing it are ambiguous")
        | None -> ());
        Hashtbl.replace seen i.Cat_bench.Ideal.label ())
      arr;
    (* Zero directions. *)
    Array.iter
      (fun (i : Cat_bench.Ideal.ideal) ->
        if Array.length i.vector > 0 && all_zero i.vector then
          emit
            (diag ?category "basis/zero-direction" D.Error i.label
               "direction is all-zero over the benchmark rows: no kernel \
                exercises this concept, its metric coordinates are \
                unconstrained"))
      arr;
    (* Pairwise: exact duplicates, then near-colinear pairs. *)
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        let ia = arr.(a) and ib = arr.(b) in
        if Array.length ia.vector = Array.length ib.vector
           && is_finite_vector ia.vector && is_finite_vector ib.vector
        then
          if same_vector ia.vector ib.vector then
            emit
              (diag ?category
                 ~data:[ ("other", Jsonio.Str ia.label) ]
                 "basis/duplicate-direction" D.Error ib.label
                 "direction is elementwise identical to %S: the basis cannot \
                  distinguish the two concepts"
                 ia.label)
          else begin
            let c = Float.abs (cos_angle ia.vector ib.vector) in
            if c >= colinear_cos_threshold then
              emit
                (diag ?category
                   ~data:[ ("other", Jsonio.Str ia.label); ("cos", fnum c) ]
                   "basis/near-colinear" D.Warn ib.label
                   "direction is nearly colinear with %S (|cos| = %.6f >= \
                    %.3f): projections onto the two are barely \
                    distinguishable under noise"
                   ia.label c colinear_cos_threshold)
          end
      done
    done;
    (* Spectral checks need a well-shaped, finite matrix. *)
    let shaped =
      Array.for_all
        (fun (i : Cat_bench.Ideal.ideal) ->
          Array.length i.vector = rows && is_finite_vector i.vector)
        arr
    in
    if shaped && rows > 0 then begin
      let mat =
        Linalg.Mat.of_cols
          (Array.map (fun (i : Cat_bench.Ideal.ideal) -> i.vector) arr)
      in
      (* Relative tolerance sqrt(eps): the one-sided Jacobi SVD
         resolves exact-zero singular values only to ~1e-9, so a
         tighter cutoff would miss genuine deficiency. *)
      let rank = Linalg.Svd.rank ~tol:1e-8 mat in
      if rank < n then
        emit
          (diag ?category
             ~data:[ ("rank", fnum (float_of_int rank));
                     ("dim", fnum (float_of_int n)) ]
             "basis/rank-deficient" D.Error "basis"
             "expectation matrix has rank %d < %d directions: some ideal \
              concepts are linear combinations of others and their metric \
              coordinates are not unique"
             rank n);
      let cond = Linalg.Svd.condition_number mat in
      if rank = n && cond > condition_warn_threshold then
        emit
          (diag ?category
             ~data:[ ("condition_number", fnum cond) ]
             "basis/ill-conditioned" D.Warn "basis"
             "expectation matrix condition number %.3e exceeds %.0e: \
              least-squares coordinates amplify measurement noise"
             cond condition_warn_threshold)
    end);
  List.rev !acc
