(* Result-side checks folded into the lint vocabulary: the
   static half validates that a derived metric's combination only
   names events its catalog defines; the dynamic half converts
   Validate's app-workload reports (which do measure) into the same
   diagnostics, so pre-flight lint and post-run validation speak one
   language. *)

module D = Core.Diagnostic

let fnum = Jsonio.fnum

let diag ?category ?(data = []) rule severity subject fmt =
  Printf.ksprintf (fun msg -> D.make ?category ~data ~rule ~severity ~subject msg) fmt

let default_error_threshold = 0.05

let analyze_combination ?category ~catalog
    (def : Core.Metric_solver.metric_def) =
  let names = Hashtbl.create 256 in
  List.iter
    (fun (e : Hwsim.Event.t) -> Hashtbl.replace names e.Hwsim.Event.name ())
    catalog;
  List.filter_map
    (fun (coef, event) ->
      if Hashtbl.mem names event then None
      else
        Some
          (diag ?category
             ~data:[ ("event", Jsonio.Str event); ("coefficient", fnum coef) ]
             "result/missing-event" D.Error def.Core.Metric_solver.metric
             "combination references event %S, which the catalog does not \
              define (evaluation would raise Not_found)"
             event))
    def.Core.Metric_solver.combination

let diagnose_reports ?category ?(threshold = default_error_threshold) reports =
  List.filter_map
    (fun (r : Core.Validate.report) ->
      if r.Core.Validate.relative_error <= threshold then None
      else
        Some
          (diag ?category
             ~data:
               [ ("app", Jsonio.Str r.Core.Validate.app);
                 ("predicted", fnum r.Core.Validate.predicted);
                 ("ground_truth", fnum r.Core.Validate.ground_truth);
                 ("relative_error", fnum r.Core.Validate.relative_error);
                 ("threshold", fnum threshold) ]
             "result/relative-error" D.Error r.Core.Validate.metric
             "metric misses the %s ground truth by %.2e (threshold %.2e): \
              predicted %.6g, truth %.6g"
             r.Core.Validate.app r.Core.Validate.relative_error threshold
             r.Core.Validate.predicted r.Core.Validate.ground_truth))
    reports
