(** Static analysis of the pipeline parameters (rules [param/*]):
    the noise threshold τ of Eq. 4, Algorithm 2's rounding tolerance
    α and its derived elimination threshold β = ‖(α,…,α)‖, the
    projection tolerance, and the repetition count the pairwise RNMSE
    needs. *)

val tau_regime : string option -> (float * float) option
(** The paper's prescribed τ regime for a category name:
    [1e-12, 1e-6] for the exact-count categories (cpu-flops,
    gpu-flops, branch), [1e-3, 0.5] for dcache, [None] for custom
    categories (only the hard (0, 1) bound applies). *)

val expected_beta : alpha:float -> rows:int -> float
(** ‖(α,…,α)‖ over [rows] entries, computed literally as a vector
    norm — independent of [Special_qrcp.beta]'s closed form, so the
    check catches drift in either. *)

val check_tau : ?category:string -> float -> Core.Diagnostic.t list
(** [param/tau-out-of-range] (error, outside (0,1)) and
    [param/tau-regime] (warn, outside the category's regime). *)

val check_alpha : ?category:string -> float -> Core.Diagnostic.t list
(** [param/alpha-out-of-range] (error, outside (0,1)). *)

val check_beta :
  ?category:string -> alpha:float -> rows:int -> float ->
  Core.Diagnostic.t list
(** [check_beta ~alpha ~rows beta]: [param/beta-mismatch] (error)
    unless [beta] equals {!expected_beta} to within 1e-12 relative. *)

val check_projection_tol :
  ?category:string -> float -> Core.Diagnostic.t list
(** [param/projection-tol-out-of-range] (error, outside (0,1)). *)

val check_reps : ?category:string -> int -> Core.Diagnostic.t list
(** [param/reps-too-few] (error, fewer than 2 repetitions). *)

val check_backend : ?category:string -> string -> Core.Diagnostic.t list
(** [param/unknown-backend] (error): the name does not identify a
    compiled storage backend ({!Linalg.Backend.of_name}); the message
    lists this build's valid names. *)

val check_jobs :
  ?category:string -> ?shards:int -> int -> Core.Diagnostic.t list
(** [param/unknown-jobs]: error when [jobs < 1] (the executor needs at
    least one domain), warning when [shards] is given and [jobs]
    exceeds it (the surplus domains idle through the shard front). *)

val analyze :
  ?category:string ->
  ?beta:float ->
  config:Core.Pipeline.config ->
  rows:int ->
  unit ->
  Core.Diagnostic.t list
(** All of the above over one configuration.  [beta] defaults to
    [Special_qrcp.beta ~alpha ~rows] — so the shipped lint verifies
    the implementation against Algorithm 2's definition — and can be
    overridden to lint an externally supplied threshold. *)
