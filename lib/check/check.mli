(** The static pre-flight analyzer: lint every declarative input of
    the pipeline — expectation bases, metric signatures, event
    catalogs, thresholds, artifact schemas — with {e zero kernel
    executions}, before any collection runs.

    A bad basis or a colliding catalog key is otherwise discovered
    deep inside a run, or never (silently wrong metrics).  Rules are
    stable ids ([scope/slug]); diagnostics are
    {!Core.Diagnostic.t} values rendered as text by [analyze lint] or
    exported as versioned JSON. *)

module Diagnostic = Core.Diagnostic

(** {1 Analysis passes}

    The individual passes, re-exported for direct use (the runners
    below compose them over the shipped categories and catalogs). *)

module Basis_check = Basis_check
module Signature_check = Signature_check
module Catalog_check = Catalog_check
module Param_check = Param_check
module Stage_check = Stage_check
module Result_check = Result_check

(** {1 Rule registry} *)

type rule = {
  id : string;
  severity : Diagnostic.severity;  (** Default severity. *)
  summary : string;  (** What the rule catches. *)
  grounding : string;  (** Paper / related-work grounding. *)
}

val rules : rule list
(** Every rule the analyzer can emit, stable order. *)

val find_rule : string -> rule option

val rules_table : unit -> string
(** Plain-text table (id, level, summary) for [analyze lint --rules]. *)

(** {1 Runners} *)

val rows_declared : Core.Category.t -> int
(** Benchmark row count straight from the category's kernel
    declarations (the reference for [ideal/shape-mismatch] and the
    β relation). *)

val catalog_name : Core.Category.t -> string
(** The shipped catalog a category measures on
    (["sapphire-rapids"] / ["mi250x"]). *)

val lint_category :
  ?config:Core.Pipeline.config -> Core.Category.t -> Diagnostic.t list
(** Basis + ideal + signature + parameter analysis for one category.
    [config] defaults to the category's paper parameters. *)

val run_catalogs : unit -> Diagnostic.t list
(** Catalog-level analysis of all three shipped catalogs
    (SPR, MI250X, Zen) plus cross-catalog collisions. *)

val run_all :
  ?categories:Core.Category.t list -> unit -> Diagnostic.t list
(** The full pre-flight pass: {!lint_category} for every category
    (default all four), {!run_catalogs}, and the
    {!Stage_check.roundtrip} schema self-check. *)

(** {1 Versioned report JSON} *)

val report_schema_version : int

val report_to_json : Diagnostic.t list -> Jsonio.t
(** [kind = "lint-report"] with severity totals and one object per
    diagnostic; round-trips through the strict parser. *)

val report_of_json : Jsonio.t -> (Diagnostic.t list, string) result
(** Strict decode; rejects unknown schema versions and mistyped
    fields. *)

(** {1 The optional pre-flight gate}

    Off by default.  Installing the gate makes {!Core.Pipeline.run}
    and {!Core.Stage.run_sharded} lint the category (basis, ideals,
    signatures, parameters, own catalog) before collecting anything,
    raising {!Core.Stage.Preflight_failed} on any error-severity
    diagnostic.  The lint pass is read-only, so on clean inputs the
    gated pipeline's outputs are bit-identical to the ungated ones. *)

val gate_lint : Core.Category.t -> Diagnostic.t list
(** What the gate runs per category. *)

val install_gate : unit -> unit

val remove_gate : unit -> unit

val gate_installed : unit -> bool
