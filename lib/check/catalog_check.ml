(* Static analysis of hardware-event catalogs: name uniqueness within
   a catalog, collisions across machine catalogs (a sweep that mixes
   shards from several machines keys readings by event name, so a
   cross-catalog collision would merge readings of different
   counters), and declaration-level sanity of each event. *)

module D = Core.Diagnostic

let diag ?category ?(data = []) rule severity subject fmt =
  Printf.ksprintf (fun msg -> D.make ?category ~data ~rule ~severity ~subject msg) fmt

let analyze_catalog ~name (events : Hwsim.Event.t list) =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  if events = [] then
    emit
      (diag ~category:name "catalog/empty-catalog" D.Error name
         "catalog declares no events: nothing to measure or analyze");
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (e : Hwsim.Event.t) ->
      (match Hashtbl.find_opt seen e.Hwsim.Event.name with
      | Some () ->
        emit
          (diag ~category:name "catalog/duplicate-event" D.Error
             e.Hwsim.Event.name
             "event name appears twice in the %s catalog: readings keyed by \
              name would alias two different counters"
             name)
      | None -> ());
      Hashtbl.replace seen e.Hwsim.Event.name ();
      if e.Hwsim.Event.terms = [] && e.Hwsim.Event.offset = 0.0 then
        emit
          (diag ~category:name "catalog/no-terms" D.Info e.Hwsim.Event.name
             "event has no activity terms and zero offset: it reads zero on \
              every workload (the noise filter will discard it as \
              irrelevant)"))
    events;
  List.rev !acc

let cross_collisions catalogs =
  let acc = ref [] in
  let owner = Hashtbl.create 1024 in
  List.iter
    (fun (cat_name, events) ->
      let seen_here = Hashtbl.create 256 in
      List.iter
        (fun (e : Hwsim.Event.t) ->
          let name = e.Hwsim.Event.name in
          (* Intra-catalog duplicates belong to analyze_catalog; only
             report each (event, catalog pair) collision once. *)
          if not (Hashtbl.mem seen_here name) then begin
            Hashtbl.replace seen_here name ();
            match Hashtbl.find_opt owner name with
            | Some first_cat when first_cat <> cat_name ->
              acc :=
                diag
                  ~data:[ ("catalogs",
                           Jsonio.List
                             [ Jsonio.Str first_cat; Jsonio.Str cat_name ]) ]
                  "catalog/cross-collision" D.Warn name
                  "event name exists in both the %s and %s catalogs: a \
                   multi-machine sweep keying readings by name would merge \
                   different counters"
                  first_cat cat_name
                :: !acc
            | Some _ -> ()
            | None -> Hashtbl.replace owner name cat_name
          end)
        events)
    catalogs;
  List.rev !acc
