(** Static analysis of an expectation basis (rules [basis/*] and
    [ideal/*]).

    Operates on the declarative ideal list a basis is built from, not
    on a constructed {!Core.Expectation.t} — so defects that
    [Expectation.of_ideals] rejects with an exception (duplicate
    labels, ragged vectors) surface as diagnostics, and defects it
    accepts silently (duplicate directions, near-colinear pairs, rank
    deficiency, ill conditioning) are caught before any collection
    runs.  Zero kernel executions: the ideal vectors are direct reads
    of the kernel declarations. *)

val colinear_cos_threshold : float
(** |cos| at or above which two distinct directions are flagged
    [basis/near-colinear] (0.999). *)

val condition_warn_threshold : float
(** Condition number above which a full-rank basis is flagged
    [basis/ill-conditioned] (1e6; past 1/rank-tol = 1e8 the basis is
    rank-deficient instead). *)

val analyze :
  ?category:string ->
  ?expected_rows:int ->
  Cat_bench.Ideal.ideal list ->
  Core.Diagnostic.t list
(** Rules emitted: [basis/empty], [basis/duplicate-label],
    [basis/zero-direction], [basis/duplicate-direction],
    [basis/near-colinear], [basis/rank-deficient],
    [basis/ill-conditioned], [basis/non-finite],
    [ideal/shape-mismatch], [ideal/negative-entry].
    [expected_rows] is the benchmark row count declared by the
    category's kernels; when omitted, the first direction's length is
    the reference. *)
