(** Schema agreement for staged-pipeline artifacts (rule
    [stage/schema-drift]).

    A multi-machine sweep ships [classified-shard] JSON between
    builds; this check catches encoder/decoder drift before that —
    the encoder's output must parse, decode under this build's
    {!Core.Stage.shard_schema_version}, and reconstruct the shard
    structurally intact. *)

val synthetic_shard : unit -> Core.Stage.classified_shard
(** A minimal fully-populated shard (two events, one non-finite
    variability to exercise the lossless number encoding) used by
    {!roundtrip}; exposed for tests. *)

val analyze_artifact : Jsonio.t -> Core.Diagnostic.t list
(** Lint one artifact document: [stage/schema-drift] (error) if this
    build's decoder rejects it (version drift, missing fields). *)

val roundtrip : unit -> Core.Diagnostic.t list
(** The self-check [Check.run_all] performs: encode the synthetic
    shard, print, re-parse, decode, compare.  Empty when encoder and
    decoder agree. *)
