(* Static analysis of the per-category pipeline parameters: the noise
   threshold tau of Eq. 4, the rounding tolerance alpha of Algorithm 2
   and its derived elimination threshold beta = ||(alpha,...,alpha)||,
   and the repetition count the pairwise RNMSE needs. *)

module D = Core.Diagnostic

let fnum = Jsonio.fnum

let diag ?category ?(data = []) rule severity subject fmt =
  Printf.ksprintf (fun msg -> D.make ?category ~data ~rule ~severity ~subject msg) fmt

(* The paper's tau regimes: the exact-count categories (CPU/GPU FLOPs,
   branches) use a value indistinguishable from zero noise, the data
   cache — whose replacement behavior is legitimately variable — an
   order-0.1 value (Section IV). *)
let tau_regime category =
  match category with
  | Some "dcache" -> Some (1e-3, 0.5)
  | Some "cpu-flops" | Some "gpu-flops" | Some "branch" -> Some (1e-12, 1e-6)
  | _ -> None

let check_tau ?category tau =
  if not (Float.is_finite tau) || tau <= 0.0 || tau >= 1.0 then
    [
      diag ?category
        ~data:[ ("tau", fnum tau) ]
        "param/tau-out-of-range" D.Error "tau"
        "noise threshold tau = %g is outside (0, 1): Eq. 4 variabilities \
         are relative errors, so every event would be %s"
        tau
        (if tau <= 0.0 then "rejected" else "kept");
    ]
  else
    match tau_regime category with
    | Some (lo, hi) when tau < lo || tau > hi ->
      [
        diag ?category
          ~data:[ ("tau", fnum tau); ("regime_lo", fnum lo);
                  ("regime_hi", fnum hi) ]
          "param/tau-regime" D.Warn "tau"
          "tau = %g is outside the paper's regime [%g, %g] for this \
           category: the noise filter will keep (or reject) events the \
           paper's analysis would not"
          tau lo hi;
      ]
    | _ -> []

let check_alpha ?category alpha =
  if not (Float.is_finite alpha) || alpha <= 0.0 || alpha >= 1.0 then
    [
      diag ?category
        ~data:[ ("alpha", fnum alpha) ]
        "param/alpha-out-of-range" D.Error "alpha"
        "rounding tolerance alpha = %g is outside (0, 1): Algorithm 2's \
         grid R(u) = alpha*floor(u/alpha + 0.5) %s"
        alpha
        (if alpha <= 0.0 then "is undefined" else "would round away the data");
    ]
  else []

(* Algorithm 2 prescribes beta = ||(alpha, ..., alpha)|| over the
   benchmark rows.  Computed literally — a norm of the alpha-filled
   vector — so this check is independent of Special_qrcp.beta's
   closed form and catches drift in either. *)
let expected_beta ~alpha ~rows =
  let v = Linalg.Vec.create rows in
  Linalg.Vec.fill v alpha;
  Linalg.Vec.norm2 v

let check_beta ?category ~alpha ~rows beta =
  if rows <= 0 then []
  else
    let expected = expected_beta ~alpha ~rows in
    let tol = 1e-12 *. Float.max 1.0 (Float.abs expected) in
    if Float.abs (beta -. expected) > tol then
      [
        diag ?category
          ~data:[ ("beta", fnum beta); ("expected", fnum expected);
                  ("alpha", fnum alpha); ("rows", fnum (float_of_int rows)) ]
          "param/beta-mismatch" D.Error "beta"
          "elimination threshold beta = %.17g but Algorithm 2 requires \
           ||(alpha,...,alpha)|| = %.17g for alpha = %g over %d rows"
          beta expected alpha rows;
      ]
    else []

let check_projection_tol ?category tol =
  if not (Float.is_finite tol) || tol <= 0.0 || tol >= 1.0 then
    [
      diag ?category
        ~data:[ ("projection_tol", fnum tol) ]
        "param/projection-tol-out-of-range" D.Error "projection-tol"
        "projection tolerance %g is outside (0, 1): relative residuals \
         live in [0, 1], so %s event would be representable"
        tol
        (if tol <= 0.0 then "no" else "every");
    ]
  else []

let check_reps ?category reps =
  if reps < 2 then
    [
      diag ?category
        ~data:[ ("reps", fnum (float_of_int reps)) ]
        "param/reps-too-few" D.Error "reps"
        "reps = %d: the pairwise RNMSE of Eq. 4 needs at least 2 \
         repetition vectors per event"
        reps;
    ]
  else []

(* A backend name is pipeline configuration like tau or alpha: a bad
   value should be a typed pre-flight diagnostic naming the compiled
   alternatives, not an argv failure. *)
let check_backend ?category name =
  match Linalg.Backend.of_name name with
  | Some _ -> []
  | None ->
    [
      diag ?category
        ~data:[ ("backend", Jsonio.Str name) ]
        "param/unknown-backend" D.Error "backend"
        "unknown storage backend %S: this build compiles %s"
        name
        (String.concat ", " Linalg.Backend.names);
    ]

(* The jobs count is configuration the same way: reject impossible
   values as typed diagnostics, and flag the shape that silently buys
   nothing — more workers than shards leaves the surplus idle for the
   whole front (the panel kernels can still use them downstream, hence
   a warning, not an error). *)
let check_jobs ?category ?shards jobs =
  if jobs < 1 then
    [
      diag ?category
        ~data:[ ("jobs", fnum (float_of_int jobs)) ]
        "param/unknown-jobs" D.Error "jobs"
        "jobs = %d: the executor needs at least one domain (--jobs 1 is \
         the sequential reference)"
        jobs;
    ]
  else
    match shards with
    | Some s when s >= 1 && jobs > s ->
      [
        diag ?category
          ~data:
            [
              ("jobs", fnum (float_of_int jobs));
              ("shards", fnum (float_of_int s));
            ]
          "param/unknown-jobs" D.Warn "jobs"
          "jobs = %d exceeds the %d shard(s) of the front: the extra \
           domains idle until the QRCP panels run"
          jobs s;
      ]
    | _ -> []

let analyze ?category ?beta ~(config : Core.Pipeline.config) ~rows () =
  let beta =
    match beta with
    | Some b -> b
    | None -> Core.Special_qrcp.beta ~alpha:config.Core.Pipeline.alpha ~rows
  in
  check_tau ?category config.Core.Pipeline.tau
  @ check_alpha ?category config.Core.Pipeline.alpha
  @ check_beta ?category ~alpha:config.Core.Pipeline.alpha ~rows beta
  @ check_projection_tol ?category config.Core.Pipeline.projection_tol
  @ check_reps ?category config.Core.Pipeline.reps
