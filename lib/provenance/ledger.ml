let schema_version = 1

type noise_status = Kept | Too_noisy | All_zero

type noise = {
  measure : string;
  variability : float;
  tau : float;
  status : noise_status;
}

type projection = {
  residual : float;
  tol : float;
  accepted : bool;
  representation : float array;
}

type pick = {
  round : int;
  score : float;
  trailing_norm : float;
  candidates : int;
  runner_up : string option;
  runner_up_score : float option;
}

type elimination_reason = Below_beta | Rank_exhausted

type elimination = {
  reason : elimination_reason;
  final_norm : float;
  beta : float;
}

type qrcp = Picked of pick | Dropped of elimination

type entry = {
  event : string;
  description : string;
  noise : noise;
  projection : projection option;
  qrcp : qrcp option;
  memberships : (string * float) list;
}

type t = {
  version : int;
  category : string;
  machine : string;
  tau : float;
  alpha : float;
  projection_tol : float;
  basis_labels : string array;
  entries : entry list;
}

type fate =
  | Discarded_all_zero
  | Discarded_noisy
  | Unrepresentable
  | Eliminated of elimination_reason
  | Chosen

let fate_name = function
  | Discarded_all_zero -> "all-zero"
  | Discarded_noisy -> "noisy"
  | Unrepresentable -> "unrepresentable"
  | Eliminated Below_beta -> "eliminated-below-beta"
  | Eliminated Rank_exhausted -> "eliminated-rank-exhausted"
  | Chosen -> "chosen"

let fate_of_name = function
  | "all-zero" -> Some Discarded_all_zero
  | "noisy" -> Some Discarded_noisy
  | "unrepresentable" -> Some Unrepresentable
  | "eliminated-below-beta" -> Some (Eliminated Below_beta)
  | "eliminated-rank-exhausted" -> Some (Eliminated Rank_exhausted)
  | "chosen" -> Some Chosen
  | _ -> None

(* The exactly-one-terminal-fate rule: each stage verdict forecloses
   the later stages or hands the event on, so the fate is read off the
   deepest stage the event reached. *)
let fate_checked (e : entry) =
  match (e.noise.status, e.projection, e.qrcp) with
  | All_zero, None, None -> Ok Discarded_all_zero
  | Too_noisy, None, None -> Ok Discarded_noisy
  | Kept, Some p, None when not p.accepted -> Ok Unrepresentable
  | Kept, Some p, Some (Dropped d) when p.accepted -> Ok (Eliminated d.reason)
  | Kept, Some p, Some (Picked _) when p.accepted -> Ok Chosen
  | Kept, None, _ ->
    Error (Printf.sprintf "%s: kept by the noise filter but never projected" e.event)
  | Kept, Some _, Some _ ->
    (* p not accepted here: the accepted cases matched above. *)
    Error (Printf.sprintf "%s: rejected at projection yet has a QRCP verdict" e.event)
  | Kept, Some _, None ->
    Error (Printf.sprintf "%s: accepted at projection but never reached the QRCP" e.event)
  | (All_zero | Too_noisy), Some _, _ ->
    Error (Printf.sprintf "%s: discarded by the noise filter yet projected" e.event)
  | (All_zero | Too_noisy), None, Some _ ->
    Error (Printf.sprintf "%s: discarded by the noise filter yet has a QRCP verdict" e.event)

let fate e =
  match fate_checked e with
  | Ok f -> f
  | Error msg -> invalid_arg ("Ledger.fate: " ^ msg)

let find t name = List.find_opt (fun e -> e.event = name) t.entries

let with_fate t f = List.filter (fun e -> fate e = f) t.entries

let chosen_in_order t =
  List.filter_map
    (fun e -> match e.qrcp with Some (Picked p) -> Some (e, p) | _ -> None)
    t.entries
  |> List.sort (fun (_, a) (_, b) -> compare a.round b.round)

(* ------------------------------------------------------------------ *)
(* Totals                                                              *)
(* ------------------------------------------------------------------ *)

type totals = {
  events : int;
  all_zero : int;
  noisy : int;
  kept : int;
  accepted : int;
  unrepresentable : int;
  eliminated : int;
  chosen : int;
}

let totals t =
  List.fold_left
    (fun acc e ->
      let acc = { acc with events = acc.events + 1 } in
      match fate e with
      | Discarded_all_zero -> { acc with all_zero = acc.all_zero + 1 }
      | Discarded_noisy -> { acc with noisy = acc.noisy + 1 }
      | Unrepresentable ->
        { acc with kept = acc.kept + 1;
                   unrepresentable = acc.unrepresentable + 1 }
      | Eliminated _ ->
        { acc with kept = acc.kept + 1; accepted = acc.accepted + 1;
                   eliminated = acc.eliminated + 1 }
      | Chosen ->
        { acc with kept = acc.kept + 1; accepted = acc.accepted + 1;
                   chosen = acc.chosen + 1 })
    { events = 0; all_zero = 0; noisy = 0; kept = 0; accepted = 0;
      unrepresentable = 0; eliminated = 0; chosen = 0 }
    t.entries

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate t =
  if t.version <> schema_version then
    Error (Printf.sprintf "schema version %d (this build reads %d)"
             t.version schema_version)
  else begin
    let seen = Hashtbl.create 64 in
    let rec go rounds = function
      | [] ->
        (* Pick rounds must be exactly 1..k, each used once. *)
        let rounds = List.sort compare rounds in
        let ok = List.for_all2 ( = ) rounds (List.init (List.length rounds) succ) in
        if ok then Ok () else Error "QRCP pick rounds are not exactly 1..rank"
      | e :: rest -> (
        if Hashtbl.mem seen e.event then
          Error (Printf.sprintf "duplicate entry for event %s" e.event)
        else begin
          Hashtbl.add seen e.event ();
          match fate_checked e with
          | Error msg -> Error msg
          | Ok f ->
            let members_ok =
              match f with
              | Chosen -> true
              | _ -> e.memberships = []
            in
            if not members_ok then
              Error
                (Printf.sprintf "%s: metric memberships on a non-chosen event"
                   e.event)
            else
              go
                (match e.qrcp with
                 | Some (Picked p) -> p.round :: rounds
                 | _ -> rounds)
                rest
        end)
    in
    go [] t.entries
  end

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

let float_eq a b = Float.equal a b (* NaN-aware bitwise-style equality *)

let merge a b =
  if a.version <> b.version then
    Error (Printf.sprintf "schema version mismatch: %d vs %d" a.version b.version)
  else if a.category <> b.category then
    Error (Printf.sprintf "category mismatch: %s vs %s" a.category b.category)
  else if a.machine <> b.machine then
    Error (Printf.sprintf "machine mismatch: %s vs %s" a.machine b.machine)
  else if
    not
      (float_eq a.tau b.tau && float_eq a.alpha b.alpha
       && float_eq a.projection_tol b.projection_tol)
  then Error "threshold mismatch (tau/alpha/projection_tol)"
  else if a.basis_labels <> b.basis_labels then
    Error "expectation basis mismatch"
  else begin
    let names = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace names e.event ()) a.entries;
    let overlap =
      List.filter (fun e -> Hashtbl.mem names e.event) b.entries
      |> List.map (fun e -> e.event)
    in
    match overlap with
    | [] -> Ok { a with entries = a.entries @ b.entries }
    | names ->
      Error
        (Printf.sprintf "overlapping event names: %s"
           (String.concat ", " names))
  end

(* ------------------------------------------------------------------ *)
(* Equality (NaN-tolerant, for round-trip tests)                       *)
(* ------------------------------------------------------------------ *)

let noise_equal a b =
  a.measure = b.measure
  && float_eq a.variability b.variability
  && float_eq a.tau b.tau
  && a.status = b.status

let projection_equal a b =
  float_eq a.residual b.residual
  && float_eq a.tol b.tol
  && a.accepted = b.accepted
  && Array.length a.representation = Array.length b.representation
  && Array.for_all2 float_eq a.representation b.representation

let qrcp_equal a b =
  match (a, b) with
  | Picked p, Picked q ->
    p.round = q.round
    && float_eq p.score q.score
    && float_eq p.trailing_norm q.trailing_norm
    && p.candidates = q.candidates
    && p.runner_up = q.runner_up
    && Option.equal float_eq p.runner_up_score q.runner_up_score
  | Dropped p, Dropped q ->
    p.reason = q.reason
    && float_eq p.final_norm q.final_norm
    && float_eq p.beta q.beta
  | _ -> false

let entry_equal a b =
  a.event = b.event
  && a.description = b.description
  && noise_equal a.noise b.noise
  && Option.equal projection_equal a.projection b.projection
  && Option.equal qrcp_equal a.qrcp b.qrcp
  && List.equal
       (fun (m, c) (m', c') -> m = m' && float_eq c c')
       a.memberships b.memberships

let equal a b =
  a.version = b.version
  && a.category = b.category
  && a.machine = b.machine
  && float_eq a.tau b.tau
  && float_eq a.alpha b.alpha
  && float_eq a.projection_tol b.projection_tol
  && a.basis_labels = b.basis_labels
  && List.equal entry_equal a.entries b.entries

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

(* Non-finite evidence values (a NaN variability from a corrupt import
   is itself evidence) use Jsonio's shared tagged-string encoding so
   the export round-trips losslessly. *)
let fnum = Jsonio.fnum

let status_name = function
  | Kept -> "kept"
  | Too_noisy -> "too-noisy"
  | All_zero -> "all-zero"

let reason_name = function
  | Below_beta -> "below-beta"
  | Rank_exhausted -> "rank-exhausted"

let opt_str = function Some s -> Jsonio.Str s | None -> Jsonio.Null

let entry_json e =
  let noise =
    Jsonio.Obj
      [
        ("measure", Jsonio.Str e.noise.measure);
        ("variability", fnum e.noise.variability);
        ("tau", fnum e.noise.tau);
        ("status", Jsonio.Str (status_name e.noise.status));
      ]
  in
  let projection =
    match e.projection with
    | None -> Jsonio.Null
    | Some p ->
      Jsonio.Obj
        [
          ("residual", fnum p.residual);
          ("tol", fnum p.tol);
          ("accepted", Jsonio.Bool p.accepted);
          ( "representation",
            Jsonio.List (Array.to_list (Array.map fnum p.representation)) );
        ]
  in
  let qrcp =
    match e.qrcp with
    | None -> Jsonio.Null
    | Some (Picked p) ->
      Jsonio.Obj
        [
          ("outcome", Jsonio.Str "picked");
          ("round", Jsonio.Num (float_of_int p.round));
          ("score", fnum p.score);
          ("trailing_norm", fnum p.trailing_norm);
          ("candidates", Jsonio.Num (float_of_int p.candidates));
          ("runner_up", opt_str p.runner_up);
          ( "runner_up_score",
            match p.runner_up_score with None -> Jsonio.Null | Some s -> fnum s
          );
        ]
    | Some (Dropped d) ->
      Jsonio.Obj
        [
          ("outcome", Jsonio.Str "eliminated");
          ("reason", Jsonio.Str (reason_name d.reason));
          ("final_norm", fnum d.final_norm);
          ("beta", fnum d.beta);
        ]
  in
  Jsonio.Obj
    [
      ("event", Jsonio.Str e.event);
      ("description", Jsonio.Str e.description);
      ("fate", Jsonio.Str (fate_name (fate e)));
      ("noise", noise);
      ("projection", projection);
      ("qrcp", qrcp);
      ( "metrics",
        Jsonio.List
          (List.map
             (fun (m, c) ->
               Jsonio.Obj [ ("metric", Jsonio.Str m); ("coefficient", fnum c) ])
             e.memberships) );
    ]

let to_json t =
  Jsonio.Obj
    [
      ("schema_version", Jsonio.Num (float_of_int t.version));
      ("category", Jsonio.Str t.category);
      ("machine", Jsonio.Str t.machine);
      ( "thresholds",
        Jsonio.Obj
          [ ("tau", fnum t.tau); ("alpha", fnum t.alpha);
            ("projection_tol", fnum t.projection_tol) ] );
      ( "basis",
        Jsonio.List
          (Array.to_list (Array.map (fun l -> Jsonio.Str l) t.basis_labels)) );
      ("events", Jsonio.List (List.map entry_json t.entries));
    ]

(* Decoding: strict — a missing or mistyped field is an error naming
   the field, so shards from incompatible builds fail loudly. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let d_field ctx name json =
  match Jsonio.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx name)

let d_float ctx name json =
  let* v = d_field ctx name json in
  match Jsonio.fnum_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: field %S is not a number" ctx name)

let d_int ctx name json =
  let* f = d_float ctx name json in
  if Float.is_integer f then Ok (int_of_float f)
  else Error (Printf.sprintf "%s: field %S is not an integer" ctx name)

let d_str ctx name json =
  let* v = d_field ctx name json in
  match Jsonio.to_string_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: field %S is not a string" ctx name)

let d_bool ctx name json =
  let* v = d_field ctx name json in
  match Jsonio.to_bool_opt v with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "%s: field %S is not a boolean" ctx name)

let d_list ctx name json =
  let* v = d_field ctx name json in
  match Jsonio.to_list_opt v with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "%s: field %S is not a list" ctx name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let noise_of_json ctx json =
  let* measure = d_str ctx "measure" json in
  let* variability = d_float ctx "variability" json in
  let* tau = d_float ctx "tau" json in
  let* status_s = d_str ctx "status" json in
  let* status =
    match status_s with
    | "kept" -> Ok Kept
    | "too-noisy" -> Ok Too_noisy
    | "all-zero" -> Ok All_zero
    | s -> Error (Printf.sprintf "%s: unknown noise status %S" ctx s)
  in
  Ok { measure; variability; tau; status }

let projection_of_json ctx json =
  let* residual = d_float ctx "residual" json in
  let* tol = d_float ctx "tol" json in
  let* accepted = d_bool ctx "accepted" json in
  let* repr = d_list ctx "representation" json in
  let* coords =
    map_result
      (fun v ->
        match Jsonio.fnum_opt v with
        | Some f -> Ok f
        | None -> Error (ctx ^ ": representation entry is not a number"))
      repr
  in
  Ok { residual; tol; accepted; representation = Array.of_list coords }

let qrcp_of_json ctx json =
  let* outcome = d_str ctx "outcome" json in
  match outcome with
  | "picked" ->
    let* round = d_int ctx "round" json in
    let* score = d_float ctx "score" json in
    let* trailing_norm = d_float ctx "trailing_norm" json in
    let* candidates = d_int ctx "candidates" json in
    let* runner_up =
      match Jsonio.member "runner_up" json with
      | Some Jsonio.Null -> Ok None
      | Some (Jsonio.Str s) -> Ok (Some s)
      | _ -> Error (ctx ^ ": bad runner_up")
    in
    let* runner_up_score =
      match Jsonio.member "runner_up_score" json with
      | Some Jsonio.Null -> Ok None
      | Some v -> (
        match Jsonio.fnum_opt v with
        | Some f -> Ok (Some f)
        | None -> Error (ctx ^ ": bad runner_up_score"))
      | None -> Error (ctx ^ ": bad runner_up_score")
    in
    Ok (Picked { round; score; trailing_norm; candidates; runner_up; runner_up_score })
  | "eliminated" ->
    let* reason_s = d_str ctx "reason" json in
    let* reason =
      match reason_s with
      | "below-beta" -> Ok Below_beta
      | "rank-exhausted" -> Ok Rank_exhausted
      | s -> Error (Printf.sprintf "%s: unknown elimination reason %S" ctx s)
    in
    let* final_norm = d_float ctx "final_norm" json in
    let* beta = d_float ctx "beta" json in
    Ok (Dropped { reason; final_norm; beta })
  | s -> Error (Printf.sprintf "%s: unknown qrcp outcome %S" ctx s)

let entry_of_json json =
  let* event = d_str "event" "event" json in
  let ctx = "event " ^ event in
  let* description = d_str ctx "description" json in
  let* noise_j = d_field ctx "noise" json in
  let* noise = noise_of_json ctx noise_j in
  let* projection =
    match Jsonio.member "projection" json with
    | Some Jsonio.Null -> Ok None
    | Some p ->
      let* p = projection_of_json ctx p in
      Ok (Some p)
    | None -> Error (ctx ^ ": missing field \"projection\"")
  in
  let* qrcp =
    match Jsonio.member "qrcp" json with
    | Some Jsonio.Null -> Ok None
    | Some q ->
      let* q = qrcp_of_json ctx q in
      Ok (Some q)
    | None -> Error (ctx ^ ": missing field \"qrcp\"")
  in
  let* metrics = d_list ctx "metrics" json in
  let* memberships =
    map_result
      (fun m ->
        let* metric = d_str ctx "metric" m in
        let* coef = d_float ctx "coefficient" m in
        Ok (metric, coef))
      metrics
  in
  let e = { event; description; noise; projection; qrcp; memberships } in
  (* The stored fate is redundant; a mismatch means the document was
     edited or produced by drifted code, so reject it. *)
  let* stored_fate = d_str ctx "fate" json in
  let* computed = fate_checked e in
  if stored_fate <> fate_name computed then
    Error
      (Printf.sprintf "%s: stored fate %S contradicts the evidence (%s)" ctx
         stored_fate (fate_name computed))
  else Ok e

let of_json json =
  let ctx = "ledger" in
  let* version = d_int ctx "schema_version" json in
  if version <> schema_version then
    Error
      (Printf.sprintf
         "unsupported schema version %d (this build reads version %d)" version
         schema_version)
  else
    let* category = d_str ctx "category" json in
    let* machine = d_str ctx "machine" json in
    let* thresholds = d_field ctx "thresholds" json in
    let* tau = d_float ctx "tau" thresholds in
    let* alpha = d_float ctx "alpha" thresholds in
    let* projection_tol = d_float ctx "projection_tol" thresholds in
    let* basis = d_list ctx "basis" json in
    let* labels =
      map_result
        (fun v ->
          match Jsonio.to_string_opt v with
          | Some s -> Ok s
          | None -> Error (ctx ^ ": basis label is not a string"))
        basis
    in
    let* events = d_list ctx "events" json in
    let* entries = map_result entry_of_json events in
    let t =
      { version; category; machine; tau; alpha; projection_tol;
        basis_labels = Array.of_list labels; entries }
    in
    let* () = validate t in
    Ok t

(* ------------------------------------------------------------------ *)
(* Human-readable decision chain                                       *)
(* ------------------------------------------------------------------ *)

let format_representation labels repr =
  let terms = ref [] in
  Array.iteri
    (fun i c ->
      if Float.abs c > 1e-9 then begin
        let label = if i < Array.length labels then labels.(i) else Printf.sprintf "e%d" i in
        terms := Printf.sprintf "%g x %s" c label :: !terms
      end)
    repr;
  match List.rev !terms with
  | [] -> "~0 (no significant component)"
  | terms -> String.concat " + " terms

let chain t (e : entry) =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let index =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x.event = e.event then i else go (i + 1) rest
    in
    go 0 t.entries
  in
  pr "%s (%s on %s)\n" e.event t.category t.machine;
  if e.description <> "" then pr "  what it counts: %s\n" e.description;
  if index >= 0 then
    pr "  catalog: event %d of %d\n" (index + 1) (List.length t.entries);
  (match e.noise.status with
  | All_zero ->
    pr "  noise filter: discarded - every repetition read zero (the event \
        never fires in this benchmark, irrelevant by construction)\n"
  | Too_noisy ->
    pr "  noise filter: discarded - %s %.3g exceeds tau %.3g (excess %.3g)\n"
      e.noise.measure e.noise.variability e.noise.tau
      (e.noise.variability -. e.noise.tau)
  | Kept ->
    pr "  noise filter: kept - %s %.3g within tau %.3g (margin %.3g)\n"
      e.noise.measure e.noise.variability e.noise.tau
      (e.noise.tau -. e.noise.variability));
  (match e.projection with
  | None ->
    pr "  projection: not reached (discarded by the noise filter)\n"
  | Some p when p.accepted ->
    pr "  projection: accepted - relative residual %.3g within tol %.3g\n"
      p.residual p.tol;
    pr "    representation: %s\n" (format_representation t.basis_labels p.representation)
  | Some p ->
    pr "  projection: rejected - relative residual %.3g exceeds tol %.3g \
        (measures something outside the expectation basis)\n"
      p.residual p.tol);
  (match e.qrcp with
  | None when e.noise.status <> Kept ->
    pr "  qrcp: not reached (discarded by the noise filter)\n"
  | None ->
    pr "  qrcp: not reached (rejected at projection)\n"
  | Some (Picked p) ->
    pr "  qrcp: chosen in round %d - score %.3g, trailing norm %.3g, %d \
        candidate%s that round%s\n"
      p.round p.score p.trailing_norm p.candidates
      (if p.candidates = 1 then "" else "s")
      (match (p.runner_up, p.runner_up_score) with
      | Some r, Some s ->
        Printf.sprintf "; runner-up %s (score %.3g, gap %.3g)" r s (s -. p.score)
      | Some r, None -> Printf.sprintf "; runner-up %s" r
      | None, _ -> "; no runner-up")
  | Some (Dropped d) -> (
    match d.reason with
    | Below_beta ->
      pr "  qrcp: eliminated - trailing norm %.3g fell below beta %.3g (the \
          event is numerically in the span of the chosen set)\n"
        d.final_norm d.beta
    | Rank_exhausted ->
      pr "  qrcp: eliminated - the factorization reached full rank before \
          this column (final trailing norm %.3g, beta %.3g)\n"
        d.final_norm d.beta));
  (match fate_checked e with
  | Ok Chosen ->
    (match e.memberships with
    | [] -> pr "  metrics: none defined for this category\n"
    | ms ->
      pr "  metrics:\n";
      List.iter
        (fun (m, c) ->
          if Float.abs c > 1e-9 then pr "    %s: coefficient %.6g\n" m c
          else pr "    %s: coefficient ~0 (unused)\n" m)
        ms)
  | Ok _ -> pr "  metrics: none (event not chosen)\n"
  | Error msg -> pr "  metrics: inconsistent record (%s)\n" msg);
  (match fate_checked e with
  | Ok f -> pr "  fate: %s\n" (fate_name f)
  | Error _ -> pr "  fate: inconsistent (unknown stage)\n");
  Buffer.contents buf
