(** Provenance recording: the emit side of the per-event audit trail.

    Same discipline as [lib/obs]: recording is off by default and every
    emission entry point is then a single flag check, so instrumented
    stage code behaves bit-identically to uninstrumented code.  Stage
    code {e emits} the facts it alone knows — the noise filter its
    per-event variability verdicts, the projection its residuals and
    representations, the specialized QRCP its pick rounds and
    eliminations (by {e column index}), the metric solver the final
    coefficients — and {!finalize} owns the aggregation: it joins the
    facts into one {!Ledger.t} keyed by event name and clears the
    collector for the next run.

    The collector is process-global and single-run: the pipeline calls
    {!begin_run} before its first stage and {!finalize} after its last.
    It is not thread-safe (the analysis pipeline is single-threaded). *)

module Ledger = Ledger

val recording : unit -> bool
(** True iff emissions are being collected.  The disabled fast path of
    every emission entry point. *)

val set_recording : bool -> unit
(** Turn recording on or off.  Either way the collector is cleared. *)

val begin_run : unit -> unit
(** Drop any facts from a previous (possibly aborted) run.  Called by
    the pipeline before its first stage. *)

(** {1 Emission}

    All no-ops unless {!recording}.  Emitting the same key twice keeps
    the later fact (last write wins, like a re-run stage). *)

val emit_noise :
  event:string -> description:string -> measure:string ->
  variability:float -> tau:float -> status:Ledger.noise_status -> unit

val emit_projection :
  event:string -> residual:float -> tol:float -> accepted:bool ->
  representation:float array -> unit

val emit_pick :
  col:int -> round:int -> score:float -> trailing_norm:float ->
  candidates:int -> runner_up:int option -> runner_up_score:float option ->
  unit
(** [col] and [runner_up] are column indices into the accepted matrix
    X; {!finalize} resolves them to event names. *)

val emit_elimination :
  col:int -> reason:Ledger.elimination_reason -> final_norm:float ->
  beta:float -> unit

val emit_membership : event:string -> metric:string -> coef:float -> unit

(** {1 Aggregation} *)

val finalize :
  category:string -> machine:string -> tau:float -> alpha:float ->
  projection_tol:float -> basis_labels:string array ->
  column_names:string array -> unit -> Ledger.t
(** Join all collected facts into a ledger (entries in noise-fact
    emission order, i.e. catalog order) and clear the collector.
    [column_names] maps QRCP column indices to event names; a fact for
    a column outside it raises [Invalid_argument]. *)
