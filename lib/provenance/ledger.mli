(** The per-event provenance ledger: one auditable record of every raw
    event's fate through the analysis pipeline.

    The pipeline is a sequence of verdicts — each event is kept or
    discarded at the noise filter (max-RNMSE vs τ), at the projection
    (relative residual vs tolerance) and at the specialized QRCP
    (picked in some round, or eliminated) — and the ledger gathers the
    verdicts with the numeric evidence and the threshold that decided
    each one, so "why did event E (not) make it into metric M?" has a
    single queryable answer.

    Entries are in catalog order.  Every entry resolves to exactly one
    terminal {!fate}; {!validate} enforces the coherence rules (an
    event rejected at projection cannot carry a QRCP verdict, only
    chosen events have metric memberships, pick rounds are exactly
    1..rank, ...). *)

val schema_version : int
(** Version stamped into exports; {!of_json} rejects any other value
    so shards from incompatible builds fail loudly. *)

(** {1 Per-stage verdicts} *)

type noise_status = Kept | Too_noisy | All_zero

type noise = {
  measure : string;  (** Variability measure name, e.g. ["max-rnmse"]. *)
  variability : float;
  tau : float;
  status : noise_status;
}

type projection = {
  residual : float;  (** [||E x - m|| / ||m||]. *)
  tol : float;
  accepted : bool;
  representation : float array;  (** x_e, expectation coordinates. *)
}

type pick = {
  round : int;  (** 1-based pick round. *)
  score : float;
  trailing_norm : float;
  candidates : int;  (** Candidates above the β threshold that round. *)
  runner_up : string option;  (** Next-best candidate's event name. *)
  runner_up_score : float option;
}

type elimination_reason =
  | Below_beta
      (** Trailing norm fell below β: numerically in the chosen span. *)
  | Rank_exhausted
      (** The factorization reached full rank before this column got a
          pick round. *)

type elimination = {
  reason : elimination_reason;
  final_norm : float;  (** Trailing norm when the factorization ended. *)
  beta : float;
}

type qrcp = Picked of pick | Dropped of elimination

type entry = {
  event : string;
  description : string;
  noise : noise;
  projection : projection option;  (** [None]: not reached. *)
  qrcp : qrcp option;  (** [None]: not reached. *)
  memberships : (string * float) list;
      (** (metric, coefficient), one per signature — chosen events
          only. *)
}

type t = {
  version : int;
  category : string;
  machine : string;
  tau : float;
  alpha : float;
  projection_tol : float;
  basis_labels : string array;
  entries : entry list;  (** Catalog order. *)
}

(** {1 Fates} *)

type fate =
  | Discarded_all_zero
  | Discarded_noisy
  | Unrepresentable
  | Eliminated of elimination_reason
  | Chosen

val fate : entry -> fate
(** The entry's single terminal fate, read off the deepest stage it
    reached.  Raises [Invalid_argument] on an incoherent entry (which
    {!validate} would reject). *)

val fate_checked : entry -> (fate, string) result

val fate_name : fate -> string
(** ["all-zero"], ["noisy"], ["unrepresentable"],
    ["eliminated-below-beta"], ["eliminated-rank-exhausted"],
    ["chosen"]. *)

val fate_of_name : string -> fate option

(** {1 Queries} *)

val find : t -> string -> entry option

val with_fate : t -> fate -> entry list

val chosen_in_order : t -> (entry * pick) list
(** Chosen entries sorted by pick round. *)

type totals = {
  events : int;
  all_zero : int;
  noisy : int;
  kept : int;  (** Survived the noise filter. *)
  accepted : int;  (** Representable in the basis. *)
  unrepresentable : int;
  eliminated : int;
  chosen : int;
}

val totals : t -> totals
(** Stage totals; [events = all_zero + noisy + kept] and
    [kept = unrepresentable + accepted],
    [accepted = eliminated + chosen]. *)

val validate : t -> (unit, string) result
(** Coherence check: schema version, unique event names, exactly one
    fate per entry, memberships only on chosen events, pick rounds
    exactly 1..rank. *)

val merge : t -> t -> (t, string) result
(** Merge ledgers over disjoint event ranges (the unit of exchange for
    catalog sharding): categories, machines, thresholds and basis must
    agree and event names must not overlap, else [Error] names the
    conflict.  Entries concatenate in shard order. *)

val equal : t -> t -> bool
(** Structural equality with NaN-tolerant float comparison (used by
    the JSON round-trip tests). *)

(** {1 JSON export / import} *)

val to_json : t -> Jsonio.t
(** Versioned export.  Non-finite evidence values are encoded as the
    tagged strings ["nan"]/["inf"]/["-inf"] so the document
    round-trips losslessly. *)

val of_json : Jsonio.t -> (t, string) result
(** Strict decode: rejects unknown schema versions, missing or
    mistyped fields, stored fates that contradict the evidence, and
    anything {!validate} rejects. *)

(** {1 Rendering} *)

val chain : t -> entry -> string
(** The human-readable decision chain for one event: catalog identity,
    each stage's verdict with the evidence and threshold that decided
    it, metric memberships, and the terminal fate. *)
