module Ledger = Ledger

(* Facts arrive keyed by what the emitting stage actually knows: the
   noise filter and projection know event names, the QRCP knows only
   column indices (of the accepted-representation matrix X), the metric
   solver knows names again.  [finalize] owns the join. *)

type qrcp_fact =
  | Qpick of {
      round : int;
      score : float;
      trailing_norm : float;
      candidates : int;
      runner_up : int option;
      runner_up_score : float option;
    }
  | Qelim of {
      reason : Ledger.elimination_reason;
      final_norm : float;
      beta : float;
    }

type noise_fact = {
  nf_event : string;
  nf_desc : string;
  nf_measure : string;
  nf_variability : float;
  nf_tau : float;
  nf_status : Ledger.noise_status;
}

let recording_flag = ref false

let noise_rev : noise_fact list ref = ref []

let proj_facts : (string, Ledger.projection) Hashtbl.t = Hashtbl.create 128

let qrcp_facts : (int, qrcp_fact) Hashtbl.t = Hashtbl.create 128

(* Per-event membership lists, accumulated in reverse emission order. *)
let member_facts : (string, (string * float) list ref) Hashtbl.t =
  Hashtbl.create 128

let clear_facts () =
  noise_rev := [];
  Hashtbl.reset proj_facts;
  Hashtbl.reset qrcp_facts;
  Hashtbl.reset member_facts

let recording () = !recording_flag

let set_recording on =
  recording_flag := on;
  clear_facts ()

let begin_run () = clear_facts ()

let emit_noise ~event ~description ~measure ~variability ~tau ~status =
  if !recording_flag then
    noise_rev :=
      { nf_event = event; nf_desc = description; nf_measure = measure;
        nf_variability = variability; nf_tau = tau; nf_status = status }
      :: !noise_rev

let emit_projection ~event ~residual ~tol ~accepted ~representation =
  if !recording_flag then
    Hashtbl.replace proj_facts event
      { Ledger.residual; tol; accepted; representation }

let emit_pick ~col ~round ~score ~trailing_norm ~candidates ~runner_up
    ~runner_up_score =
  if !recording_flag then
    Hashtbl.replace qrcp_facts col
      (Qpick { round; score; trailing_norm; candidates; runner_up;
               runner_up_score })

let emit_elimination ~col ~reason ~final_norm ~beta =
  if !recording_flag then
    Hashtbl.replace qrcp_facts col (Qelim { reason; final_norm; beta })

let emit_membership ~event ~metric ~coef =
  if !recording_flag then begin
    let cell =
      match Hashtbl.find_opt member_facts event with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add member_facts event c;
        c
    in
    cell := (metric, coef) :: !cell
  end

let finalize ~category ~machine ~tau ~alpha ~projection_tol ~basis_labels
    ~column_names () =
  (* Column-index facts become name-keyed via the accepted-column name
     table the caller (the pipeline) owns. *)
  let qrcp_by_name = Hashtbl.create (Hashtbl.length qrcp_facts) in
  Hashtbl.iter
    (fun col fact ->
      if col < 0 || col >= Array.length column_names then
        invalid_arg
          (Printf.sprintf
             "Provenance.finalize: QRCP fact for column %d but X has %d \
              columns"
             col (Array.length column_names));
      Hashtbl.replace qrcp_by_name column_names.(col) fact)
    qrcp_facts;
  let entry_of_noise (nf : noise_fact) =
    let qrcp =
      match Hashtbl.find_opt qrcp_by_name nf.nf_event with
      | None -> None
      | Some (Qpick p) ->
        Some
          (Ledger.Picked
             {
               round = p.round;
               score = p.score;
               trailing_norm = p.trailing_norm;
               candidates = p.candidates;
               runner_up =
                 Option.map (fun c -> column_names.(c)) p.runner_up;
               runner_up_score = p.runner_up_score;
             })
      | Some (Qelim e) ->
        Some
          (Ledger.Dropped
             { reason = e.reason; final_norm = e.final_norm; beta = e.beta })
    in
    {
      Ledger.event = nf.nf_event;
      description = nf.nf_desc;
      noise =
        { measure = nf.nf_measure; variability = nf.nf_variability;
          tau = nf.nf_tau; status = nf.nf_status };
      projection = Hashtbl.find_opt proj_facts nf.nf_event;
      qrcp;
      memberships =
        (match Hashtbl.find_opt member_facts nf.nf_event with
        | Some cell -> List.rev !cell
        | None -> []);
    }
  in
  let entries = List.rev_map entry_of_noise !noise_rev in
  clear_facts ();
  {
    Ledger.version = Ledger.schema_version;
    category;
    machine;
    tau;
    alpha;
    projection_tol;
    basis_labels;
    entries;
  }
